"""Command-line interface: regenerate any paper artifact or scenario.

Examples
--------
List everything that can be run::

    python -m repro list
    python -m repro scenario list

Regenerate Fig. 6 for the Facebook surrogate at a laptop-friendly scale::

    python -m repro fig6 --dataset facebook --scale 0.2 --trials 2

Run a registered scenario (paper figure or cross-product extension) on four
worker processes::

    python -m repro scenario run xprod/protocol-duel-mga --jobs 4

Record / verify the golden regression fixtures under ``tests/golden``::

    python -m repro scenario record
    python -m repro scenario check
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.engine import integrity
from repro.engine.distributed import DEFAULT_LEASE_TTL, DistributedExecutor
from repro.engine.graph_store import GraphStore
from repro.engine.result_store import ShardedResultStore
from repro.experiments import figures
from repro.experiments.config import ExperimentConfig
from repro.graph.datasets import (
    DATASETS,
    REAL_DATASETS,
    cached_dataset_path,
    dataset_statistics,
    fetch_dataset,
    known_dataset_names,
)
from repro.experiments.reporting import format_table
from repro.scenarios import golden as golden_store
from repro.scenarios.registry import SCENARIOS, get_scenario, scenario_names
from repro.scenarios.run import prepare_scenario, run_scenario, run_scenarios
from repro.telemetry import ProgressPrinter, RunManifest, Tracer
from repro.telemetry.core import current_tracer, use_tracer
from repro.telemetry.export import summarize_trace, write_trace

#: Figure drivers that take (dataset, config).
_PER_DATASET: Dict[str, Callable] = {
    "fig6": figures.fig6,
    "fig7": figures.fig7,
    "fig8": figures.fig8,
    "fig9": figures.fig9,
    "fig10": figures.fig10,
    "fig11": figures.fig11,
}

#: Figure drivers that take (config, dataset) and default to facebook.
_DEFENSE_FIGURES: Dict[str, Callable] = {
    "fig12a": figures.fig12a,
    "fig12b": figures.fig12b,
    "fig13a": figures.fig13a,
    "fig13b": figures.fig13b,
}

#: Two-panel protocol comparisons.
_PROTOCOL_FIGURES: Dict[str, Callable] = {
    "fig14": figures.fig14,
    "fig15": figures.fig15,
}

ARTIFACTS = ["table2", *_PER_DATASET, *_DEFENSE_FIGURES, *_PROTOCOL_FIGURES]


def _add_run_options(parser: argparse.ArgumentParser, dataset_default: Optional[str]) -> None:
    """The shared experiment knobs (Table III defaults + engine backends)."""
    parser.add_argument(
        "--dataset",
        default=dataset_default,
        choices=known_dataset_names(),
        help="dataset surrogate, or a fetched snap-* real dataset"
        + ("" if dataset_default else " (default: the scenario's own dataset)"),
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale in (0, 1]; default: the dataset's laptop scale",
    )
    parser.add_argument("--trials", type=int, default=2, help="trials per data point")
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument("--epsilon", type=float, default=4.0, help="default privacy budget")
    parser.add_argument("--beta", type=float, default=0.05, help="fake-user fraction")
    parser.add_argument("--gamma", type=float, default=0.05, help="target fraction")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for trial execution (results are identical "
        "for any value; >1 fans the whole batch out over one persistent "
        "process pool with graphs in shared memory)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every trial instead of reusing the on-disk result "
        "cache (see REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2,
        help="rounds a crashed/stalled parallel batch is retried before the "
        "failure propagates; only undelivered chunks re-run, results are "
        "bit-identical either way (default: %(default)s)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None,
        help="seconds one round of in-flight worker chunks may stall before "
        "the pool is replaced and the round retried (default: no deadline)",
    )


def _add_scenario_commands(subparsers) -> None:
    """The ``scenario`` subcommand family (list / run / record / check)."""
    scenario = subparsers.add_parser(
        "scenario",
        help="declarative scenarios: list, run, record or check goldens",
        description="Work with the declarative scenario catalog "
        "(repro.scenarios): paper figures and cross-product extensions "
        "alike compile to engine task batches and share the golden-result "
        "regression store under tests/golden/.",
    )
    actions = scenario.add_subparsers(dest="action", required=True)

    lister = actions.add_parser(
        "list",
        help="enumerate registered scenarios",
        description="List registered scenarios with their datasets, swept "
        "parameter and tags.  Paper artifacts keep their figure names; "
        "extensions live under xprod/.",
    )
    lister.add_argument("--tag", default="", help="only scenarios carrying this tag")
    lister.add_argument(
        "--extensions", action="store_true",
        help="only cross-product scenarios the paper never ran",
    )

    runner = actions.add_parser(
        "run",
        help="run one or more scenarios end to end and print their tables",
        description="Compile registered scenarios into ONE engine task "
        "batch, execute it (optionally parallel/cached) and print one table "
        "per panel.  Several names share a single execution session: every "
        "distinct dataset surrogate is loaded and shared-memory-exported "
        "once, and all trials fan out over one persistent worker pool.",
    )
    runner.add_argument(
        "names", nargs="+", metavar="name",
        help="registered scenario name(s) (see 'scenario list'); multiple "
        "names run as one batched fan-out",
    )
    _add_run_options(runner, dataset_default=None)
    runner.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record telemetry and write a JSONL trace (plus a sibling "
        ".manifest.json run manifest) to PATH; inspect it with "
        "'repro trace summarize PATH'",
    )
    runner.add_argument(
        "--progress", action="store_true",
        help="print live per-panel progress to stderr while trials run",
    )
    runner.add_argument(
        "--resume", action="store_true",
        help="finish an interrupted sweep: refresh the shared result store "
        "so everything any worker appended before dying answers as a cache "
        "hit, recompute only what is missing, and print the reuse summary "
        "(results are bit-identical to an uninterrupted run)",
    )

    recorder = actions.add_parser(
        "record",
        help="(re)write golden regression fixtures",
        description="Run scenarios at the small golden configuration "
        "(scale=0.02, trials=2, seed=0, cache off) and write their expected "
        "means/stderrs and task-batch hashes to tests/golden/*.json.  With "
        "no names, records every registered scenario.",
    )
    recorder.add_argument("names", nargs="*", help="scenario names (default: all)")
    recorder.add_argument(
        "--dir", default=None,
        help="fixture directory (default: tests/golden, or $REPRO_GOLDEN_DIR)",
    )
    recorder.add_argument(
        "--scale", type=float, default=golden_store.GOLDEN_CONFIG.scale,
        help="recording scale (default: %(default)s)",
    )
    recorder.add_argument(
        "--trials", type=int, default=golden_store.GOLDEN_CONFIG.trials,
        help="recording trials (default: %(default)s)",
    )
    recorder.add_argument(
        "--seed", type=int, default=golden_store.GOLDEN_CONFIG.seed,
        help="recording root seed (default: %(default)s)",
    )

    checker = actions.add_parser(
        "check",
        help="replay scenarios against their golden fixtures",
        description="Replay scenarios at each fixture's recorded "
        "configuration (cache disabled) and report any drift in task "
        "batches, means or standard errors.  Exit code 1 on mismatch.",
    )
    checker.add_argument("names", nargs="*", help="scenario names (default: all recorded)")
    checker.add_argument(
        "--dir", default=None,
        help="fixture directory (default: tests/golden, or $REPRO_GOLDEN_DIR)",
    )


def _add_worker_command(subparsers) -> None:
    """The ``worker`` subcommand: one process of a distributed fleet."""
    worker = subparsers.add_parser(
        "worker",
        help="join a distributed sweep: claim shard ranges, compute, exit",
        description="Run one worker of a distributed sweep.  Start any "
        "number of these — same host or many hosts sharing REPRO_CACHE_DIR "
        "— with identical scenario names and knobs: each claims "
        "content-hash shard ranges via lease files next to the result "
        "shards, computes them, appends to the shared store and exits when "
        "nothing is left to claim.  Crashed workers' leases expire and "
        "their unfinished ranges are reclaimed by survivors; a sweep "
        "interrupted entirely is finished by 'scenario run --resume'.  "
        "Results are bit-identical to a serial run for any fleet size, "
        "interleaving or crash pattern.",
    )
    worker.add_argument(
        "names", nargs="+", metavar="name",
        help="registered scenario name(s); every worker of one sweep must "
        "pass the same names and knobs",
    )
    _add_run_options(worker, dataset_default=None)
    worker.add_argument(
        "--worker-id", default=None,
        help="fleet-unique lease owner id (default: <hostname>:<pid>)",
    )
    worker.add_argument(
        "--ranges", type=int, default=16,
        help="shard ranges the task space is cut into — the unit of claim "
        "and of crash recovery (default: %(default)s, max 256)",
    )
    worker.add_argument(
        "--lease-ttl", type=float, default=30.0,
        help="seconds a lease's heartbeat may stand still before other "
        "workers reclaim its range (default: %(default)s)",
    )
    worker.add_argument(
        "--poll-interval", type=float, default=0.2,
        help="seconds between polls of ranges other workers own "
        "(default: %(default)s)",
    )


def _add_cache_commands(subparsers) -> None:
    """The ``cache`` subcommand family (verify / repair / gc / stats)."""
    cache = subparsers.add_parser(
        "cache",
        help="inspect and maintain the on-disk result store",
        description="Integrity tooling for the sharded result store: verify "
        "scans every shard line and legacy file and reports corruption "
        "per shard; repair compacts shards (corrupt lines move to "
        "<root>/quarantine/ with a structured reason, superseded duplicates "
        "drop, last-writer-wins winners are preserved bit-identically); gc "
        "prunes expired leases, stale temp files and already-migrated "
        "legacy files; stats prints the same scan without failing on "
        "damage.  Run these between sweeps — a live append reads as a torn "
        "trailing line.",
    )
    actions = cache.add_subparsers(dest="action", required=True)
    descriptions = {
        "verify": "Full-store integrity scan: parse and checksum-verify "
        "every shard line, probe every legacy per-task file, count "
        "quarantined records.  Read-only.  Exit code 1 when any corrupt "
        "record is found.",
        "repair": "Rewrite damaged shards via write-temp+rename compaction: "
        "corrupt lines are quarantined with their reason, superseded "
        "duplicates dropped, surviving last-writer-wins entries preserved "
        "byte for byte.  Clean shards are left untouched.",
        "gc": "Prune dead weight: lease files and lease temp files whose "
        "mtime is older than --lease-ttl (a crashed worker's leftovers), "
        "and legacy per-task files whose entry already answers from its "
        "shard (migrated forward, never read again).",
        "stats": "Print the verify scan's summary (entries, checksummed vs "
        "legacy lines, superseded duplicates, quarantine size) without "
        "treating damage as a failure.  Exit code 0 always.",
    }
    for name in ("verify", "repair", "gc", "stats"):
        action = actions.add_parser(
            name,
            help=descriptions[name].split(":")[0].lower(),
            description=descriptions[name],
        )
        action.add_argument(
            "--dir", default=None,
            help="cache root (default: $REPRO_CACHE_DIR or .repro_cache/)",
        )
        if name == "gc":
            action.add_argument(
                "--lease-ttl", type=float, default=DEFAULT_LEASE_TTL,
                help="seconds a lease file may sit unmodified before gc "
                "treats it as a crashed worker's leftover "
                "(default: %(default)s)",
            )


def _add_dataset_commands(subparsers) -> None:
    """The ``dataset`` subcommand family (list / fetch / stats)."""
    dataset = subparsers.add_parser(
        "dataset",
        help="real-dataset cache: list, fetch once, print statistics",
        description="Manage the content-addressed real-dataset cache next "
        "to the result store (REPRO_CACHE_DIR): list shows every surrogate "
        "and snap-* real dataset with its cache state; fetch downloads (or "
        "ingests a local copy of) one SNAP edge list exactly once, "
        "checksum-verified; stats loads a dataset and prints its node/edge "
        "counts.  Fetched datasets plug into every experiment via "
        "--dataset snap-<name>.",
    )
    actions = dataset.add_subparsers(dest="action", required=True)

    actions.add_parser(
        "list",
        help="enumerate surrogates and real datasets with cache state",
        description="List every loadable dataset: the four deterministic "
        "surrogates (always available) and the four genuine SNAP releases "
        "with whether and where each is cached.",
    )

    fetcher = actions.add_parser(
        "fetch",
        help="download and cache one real dataset (idempotent)",
        description="Stream one SNAP edge list into the content-addressed "
        "cache: gzip is decompressed on the fly, the raw bytes are "
        "sha256-hashed (pinned on first fetch, verified on every load), "
        "node ids are remapped to dense codes and the parsed graph is "
        "published atomically.  Already-cached datasets return immediately "
        "unless --force.",
    )
    fetcher.add_argument("name", help="real dataset name (see 'dataset list')")
    fetcher.add_argument(
        "--source", default=None,
        help="local file or mirror URL standing in for the canonical SNAP "
        "URL — required in offline environments",
    )
    fetcher.add_argument(
        "--force", action="store_true",
        help="re-fetch even when a cache entry exists",
    )

    statser = actions.add_parser(
        "stats",
        help="load one dataset and print node/edge counts",
        description="Load a dataset (surrogate or fetched real release) and "
        "print its node count, edge count and average degree.",
    )
    statser.add_argument("name", help="dataset name (see 'dataset list')")
    statser.add_argument(
        "--scale", type=float, default=None,
        help="scale in (0, 1]; surrogates default to their laptop scale, "
        "real datasets to full size",
    )


def _add_trace_commands(subparsers) -> None:
    """The ``trace`` subcommand family (summarize)."""
    trace = subparsers.add_parser(
        "trace",
        help="inspect telemetry traces written by 'scenario run --trace'",
        description="Work with JSONL telemetry traces: summarize renders "
        "the top spans by total time, every counter total and the run "
        "manifest (if present next to the trace).",
    )
    actions = trace.add_subparsers(dest="action", required=True)
    summarizer = actions.add_parser(
        "summarize",
        help="print top-spans and counter tables for one trace file",
        description="Parse a trace JSONL file (tolerating torn lines) and "
        "print the top spans by total time, all counter totals and the "
        "sibling manifest's one-line summary.",
    )
    summarizer.add_argument("path", help="trace JSONL file to summarize")
    summarizer.add_argument(
        "--top", type=int, default=15,
        help="span names to show, by descending total time (default: %(default)s)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of 'Data Poisoning Attacks to "
        "LDP Protocols for Graphs' (ICDE 2025), or run declarative scenarios "
        "beyond the paper's grid.",
    )
    subparsers = parser.add_subparsers(dest="artifact", required=True)
    subparsers.add_parser("list", help="enumerate the paper artifacts")
    for name in ARTIFACTS:
        helps = {
            "table2": "dataset statistics",
            **{fig: "per-dataset attack sweep (use --dataset)" for fig in _PER_DATASET},
            **{fig: "countermeasure sweep (facebook)" for fig in _DEFENSE_FIGURES},
            **{fig: "LF-GDPR vs LDPGen comparison" for fig in _PROTOCOL_FIGURES},
        }
        artifact = subparsers.add_parser(name, help=helps[name])
        _add_run_options(artifact, dataset_default="facebook")
    _add_scenario_commands(subparsers)
    _add_worker_command(subparsers)
    _add_cache_commands(subparsers)
    _add_dataset_commands(subparsers)
    _add_trace_commands(subparsers)
    return parser


def _config_from(args) -> ExperimentConfig:
    return ExperimentConfig(
        beta=args.beta, gamma=args.gamma, epsilon=args.epsilon,
        trials=args.trials, seed=args.seed, scale=args.scale,
        jobs=args.jobs, cache=not args.no_cache,
        max_retries=args.max_retries, task_timeout=args.task_timeout,
    )


def _scenario_list(args, out) -> int:
    names = scenario_names(paper=False if args.extensions else None, tag=args.tag)
    if not names:
        print("no scenarios match", file=out)
        return 1
    rows = []
    for name in names:
        spec = SCENARIOS.create(name)
        rows.append(
            [
                name,
                "paper" if spec.paper else "extension",
                spec.dataset if spec.kind == "sweep" else "-",
                spec.parameter if spec.kind == "sweep" else "-",
                spec.description,
            ]
        )
    print(
        format_table(
            ["scenario", "origin", "dataset", "sweeps", "description"],
            rows,
            title="registered scenarios",
        ),
        file=out,
    )
    return 0


def _scenario_run(args, out) -> int:
    specs = [get_scenario(name, dataset=args.dataset or "") for name in args.names]
    config = _config_from(args)

    # An explicit store instance (rather than letting the session build
    # one) so this function can report on it afterwards: resume reuse
    # counts, and — after a disk fault — exactly which results are
    # non-durable.  --resume additionally refreshes it so every result a
    # crashed worker appended before dying answers as a hit and only the
    # genuinely missing tasks recompute.
    if args.resume and args.no_cache:
        print("--resume replays the shared result store; it cannot be "
              "combined with --no-cache", file=out)
        return 2
    store: Optional[ShardedResultStore] = None
    if not args.no_cache:
        store = ShardedResultStore()
        if args.resume:
            store.refresh()

    # --trace/--progress install an explicit tracer for this run only;
    # without them the current tracer stays in charge (REPRO_TRACE still
    # promotes one process-wide, it just isn't exported to a file here).
    tracer: Optional[Tracer] = None
    if args.trace or args.progress:
        tracer = Tracer()
        if args.progress:
            tracer.add_callback(ProgressPrinter())

    started = time.perf_counter()
    with use_tracer(tracer) if tracer is not None else _current_tracer_scope():
        if len(specs) == 1:
            blocks = [run_scenario(specs[0], config, cache=store).format()]
        else:
            results = run_scenarios(specs, config, cache=store)
            blocks = [
                f"=== {name} ===\n{result.format()}"
                for name, result in results.items()
            ]
    print("\n\n".join(blocks), file=out)
    if args.resume and store is not None:
        stats = store.stats()
        print(
            f"resume: reused {stats['hits']} stored results, "
            f"computed {stats['appends']} missing",
            file=out,
        )
    _warn_non_durable(store, out)

    if args.trace and tracer is not None:
        manifest = RunManifest.from_tracer(
            tracer,
            scenarios=[spec.name for spec in specs],
            config=dataclasses.asdict(config),
            wall_seconds=time.perf_counter() - started,
        )
        path = write_trace(tracer, args.trace, manifest=manifest)
        print(f"trace written to {path}", file=out)
    return 0


def _worker_run(args, out) -> int:
    """One process of a distributed fleet: claim, compute, append, exit."""
    if args.no_cache:
        print("worker mode computes into the shared result store; it cannot "
              "run with --no-cache", file=out)
        return 2
    specs = [get_scenario(name, dataset=args.dataset or "") for name in args.names]
    config = _config_from(args)
    store = ShardedResultStore()
    executor = DistributedExecutor(
        store,
        worker_id=args.worker_id,
        jobs=config.jobs,
        range_count=args.ranges,
        lease_ttl=args.lease_ttl,
        poll_interval=args.poll_interval,
        max_retries=config.max_retries,
        task_timeout=config.task_timeout,
    )
    with GraphStore() as graphs:
        batch = []
        for spec in specs:
            if spec.kind != "sweep":
                continue
            prepared = prepare_scenario(spec, config)
            for key, graph in prepared.graphs.items():
                graphs.add(graph, prepared.labels.get(key))
            batch.extend(prepared.tasks)
        appended = executor.work(batch, graphs)
    stats = store.stats()
    print(
        f"worker {executor.worker_id}: appended {appended} of {len(batch)} "
        f"results ({stats['hits']} already stored); leases under "
        f"{store.root / 'leases'}",
        file=out,
    )
    _warn_non_durable(store, out)
    return 0


def _warn_non_durable(store: Optional[ShardedResultStore], out) -> None:
    """Tell the user exactly which results a disk fault kept in memory only."""
    if store is None or not store.non_durable_count:
        return
    print(
        f"WARNING: {store.non_durable_count} result(s) are NOT durable — a "
        f"disk fault (ENOSPC/EIO) interrupted appends to {store.root}. "
        "The printed tables are complete, but these results exist only in "
        "this process; free space and rerun with --resume to recompute and "
        "persist exactly the missing tasks:",
        file=out,
    )
    for payload in store.non_durable_tasks():
        print(
            f"  {payload['hash'][:16]} metric={payload.get('metric')} "
            f"attack={payload.get('attack')} seed={payload.get('seed')}",
            file=out,
        )


def _cache_run(args, out) -> int:
    """The ``cache verify|repair|gc|stats`` maintenance commands."""
    root = Path(args.dir) if args.dir else None
    if args.action == "verify":
        report = integrity.verify_store(root)
        print(report.format(), file=out)
        return 1 if report.corrupt_total else 0
    if args.action == "repair":
        report = integrity.repair_store(root)
        print(report.format(), file=out)
        return 0
    if args.action == "gc":
        report = integrity.gc_store(root, lease_ttl=args.lease_ttl)
        print(report.format(), file=out)
        return 0
    # stats: the verify scan, informational exit code.
    print(integrity.verify_store(root).format(), file=out)
    return 0


class _current_tracer_scope:
    """No-op stand-in for :class:`use_tracer` when no tracer is installed."""

    def __enter__(self):
        return current_tracer()

    def __exit__(self, *exc_info):
        pass


def _dataset_run(args, out) -> int:
    """The ``dataset list|fetch|stats`` cache commands."""
    if args.action == "list":
        rows = []
        for name in sorted(DATASETS):
            rows.append([name, "surrogate", "always available", DATASETS[name].description])
        for name in sorted(REAL_DATASETS):
            cached = cached_dataset_path(name)
            state = f"cached: {cached.parent}" if cached else "not fetched"
            rows.append([name, "real", state, REAL_DATASETS[name].description])
        print(
            format_table(
                ["dataset", "kind", "cache", "description"], rows, title="datasets"
            ),
            file=out,
        )
        return 0
    if args.action == "fetch":
        try:
            path = fetch_dataset(args.name, source=args.source, force=args.force)
        except (KeyError, RuntimeError, ValueError) as error:
            print(str(error).strip("'\""), file=out)
            return 1
        print(f"cached {args.name} -> {path.parent}", file=out)
        return 0
    # stats
    try:
        nodes, edges = dataset_statistics(args.name, scale=args.scale)
    except (KeyError, RuntimeError) as error:
        print(str(error).strip("'\""), file=out)
        return 1
    average = 2.0 * edges / nodes if nodes else 0.0
    print(
        format_table(
            ["dataset", "nodes", "edges", "avg degree"],
            [[args.name, nodes, edges, f"{average:.2f}"]],
            title="dataset statistics",
        ),
        file=out,
    )
    return 0


def _trace_summarize(args, out) -> int:
    path = Path(args.path)
    if not path.is_file():
        print(f"no trace file at {path}", file=out)
        return 1
    print(summarize_trace(path, top=args.top), file=out)
    return 0


def _scenario_record(args, out) -> int:
    names = list(args.names) or list(SCENARIOS)
    config = golden_store.GOLDEN_CONFIG.with_overrides(
        scale=args.scale, trials=args.trials, seed=args.seed
    )
    directory = Path(args.dir) if args.dir else None
    for name in names:
        path = golden_store.record_golden(SCENARIOS.create(name), config, directory)
        print(f"recorded {name} -> {path}", file=out)
    return 0


def _scenario_check(args, out) -> int:
    directory = Path(args.dir) if args.dir else None
    names = list(args.names)
    if not names:
        root = directory if directory is not None else golden_store.default_golden_dir()
        names = [
            name for name in SCENARIOS
            if golden_store.golden_path(name, root).is_file()
        ]
    if not names:
        print("no golden fixtures found; run 'scenario record' first", file=out)
        return 1
    failed = False
    for name in names:
        try:
            problems = golden_store.check_golden(SCENARIOS.create(name), directory)
        except FileNotFoundError:
            failed = True
            print(
                f"MISSING {name} — no golden fixture; run 'scenario record {name}'",
                file=out,
            )
            continue
        status = "ok" if not problems else "DRIFT"
        print(f"{status:<6} {name}", file=out)
        for problem in problems:
            failed = True
            print(f"       {problem}", file=out)
    return 1 if failed else 0


def run(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)

    if args.artifact == "scenario":
        handler = {
            "list": _scenario_list,
            "run": _scenario_run,
            "record": _scenario_record,
            "check": _scenario_check,
        }[args.action]
        return handler(args, out)

    if args.artifact == "worker":
        return _worker_run(args, out)

    if args.artifact == "cache":
        return _cache_run(args, out)

    if args.artifact == "dataset":
        return _dataset_run(args, out)

    if args.artifact == "trace":
        return _trace_summarize(args, out)

    if args.artifact == "list":
        lines: List[str] = ["available artifacts:"]
        lines.append("  table2       dataset statistics")
        for name in _PER_DATASET:
            lines.append(f"  {name:<12} per-dataset attack sweep (use --dataset)")
        for name in _DEFENSE_FIGURES:
            lines.append(f"  {name:<12} countermeasure sweep (facebook)")
        for name in _PROTOCOL_FIGURES:
            lines.append(f"  {name:<12} LF-GDPR vs LDPGen comparison")
        lines.append("  scenario     declarative scenarios (list/run/record/check)")
        lines.append("  worker       one process of a distributed sweep fleet")
        lines.append("  cache        result-store integrity (verify/repair/gc/stats)")
        lines.append("  dataset      real-dataset cache (list/fetch/stats)")
        print("\n".join(lines), file=out)
        return 0

    config = _config_from(args)

    if args.artifact == "table2":
        rows = figures.table2_rows(config)
        print(
            format_table(
                ["dataset", "paper nodes", "paper edges", "surrogate nodes", "surrogate edges"],
                rows,
                title="Table II",
            ),
            file=out,
        )
        return 0

    if args.artifact in _PER_DATASET:
        result = _PER_DATASET[args.artifact](args.dataset, config)
        print(result.format(), file=out)
        return 0

    if args.artifact in _DEFENSE_FIGURES:
        result = _DEFENSE_FIGURES[args.artifact](config, dataset=args.dataset)
        print(result.format(), file=out)
        return 0

    results = _PROTOCOL_FIGURES[args.artifact](config, dataset=args.dataset)
    for sweep in results.values():
        print(sweep.format(), file=out)
        print(file=out)
    return 0
