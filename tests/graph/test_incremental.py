"""Tests for incremental before/after triangle estimation.

The paired-run contract: when an after graph differs from its before graph
only on pairs incident to a touched node set, the incremental update must be
*bit-identical* (exact integers) to a full recount — across backends,
override fractions, densities and both sides of the ``REPRO_DELTA_THRESHOLD``
crossover.  Ground truth is networkx.
"""

import networkx as nx
import numpy as np
import pytest

from repro.graph import metrics
from repro.graph.adjacency import Graph
from repro.graph.bitmatrix import BitMatrix
from repro.graph.generators import erdos_renyi_graph
from repro.graph.metrics import (
    DEFAULT_DELTA_THRESHOLD,
    delta_stats,
    delta_threshold,
    reset_delta_stats,
    should_use_incremental,
    triangles_per_node,
    triangles_per_node_cached,
    triangles_per_node_incremental,
    triangles_touching,
)


def networkx_triangles(graph: Graph) -> np.ndarray:
    counts = nx.triangles(graph.to_networkx())
    return np.array([counts[node] for node in range(graph.num_nodes)], dtype=np.int64)


def touch_rows(graph: Graph, touched: np.ndarray, rng: np.random.Generator) -> Graph:
    """An after-graph differing from ``graph`` only on pairs incident to
    ``touched``: drop roughly half the incident edges, add fresh claims."""
    rows, cols = graph.edge_arrays()
    incident = np.isin(rows, touched) | np.isin(cols, touched)
    drop = incident & (rng.random(rows.size) < 0.5)
    after = graph.without_edges(
        list(zip(rows[drop].tolist(), cols[drop].tolist()))
    )
    n = graph.num_nodes
    additions = []
    for node in touched.tolist():
        for neighbor in rng.choice(n, size=min(n - 1, 4), replace=False).tolist():
            if neighbor != node:
                additions.append((node, neighbor))
    return after.with_edges(additions)


class TestTrianglesTouching:
    @pytest.mark.parametrize("density", [0.02, 0.15, 0.5])
    @pytest.mark.parametrize("backend_threshold", ["0", "1.1"])
    def test_matches_brute_force_both_backends(self, density, backend_threshold, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE_THRESHOLD", backend_threshold)
        rng = np.random.default_rng(7)
        graph = erdos_renyi_graph(40, density, rng=3)
        nx_graph = graph.to_networkx()
        touched = np.sort(rng.choice(40, size=8, replace=False))
        touched_set = set(touched.tolist())
        brute = np.zeros(40, dtype=np.int64)
        for clique in nx.enumerate_all_cliques(nx_graph):
            if len(clique) == 3 and touched_set & set(clique):
                for vertex in clique:
                    brute[vertex] += 1
        assert triangles_touching(graph, touched).tolist() == brute.tolist()

    def test_full_touched_set_equals_total_counts(self):
        graph = erdos_renyi_graph(25, 0.3, rng=0)
        everyone = np.arange(25)
        assert np.array_equal(
            triangles_touching(graph, everyone), triangles_per_node(graph)
        )

    def test_empty_touched_set(self):
        graph = erdos_renyi_graph(10, 0.5, rng=0)
        assert triangles_touching(graph, np.empty(0, dtype=np.int64)).tolist() == [0] * 10


class TestIncrementalEquality:
    @pytest.mark.parametrize("fraction", [0.0, 0.05, 0.1, 0.25, 0.5])
    @pytest.mark.parametrize("backend_threshold", ["0", "1.1"])
    def test_incremental_equals_full_equals_networkx(
        self, fraction, backend_threshold, monkeypatch
    ):
        monkeypatch.setenv("REPRO_DENSE_THRESHOLD", backend_threshold)
        # Keep the crossover out of the way: this test checks equality, the
        # threshold behaviour is covered separately below.
        monkeypatch.setenv("REPRO_DELTA_THRESHOLD", "1.0")
        rng = np.random.default_rng(int(fraction * 100))
        n = 48
        graph = erdos_renyi_graph(n, 0.25, rng=5)
        count = max(0, round(fraction * n))
        touched = np.sort(rng.choice(n, size=count, replace=False)) if count else np.empty(0, dtype=np.int64)
        after = touch_rows(graph, touched, rng) if count else graph
        before_triangles = triangles_per_node(graph)
        incremental = triangles_per_node_incremental(graph, after, touched, before_triangles)
        full = triangles_per_node(after)
        assert np.array_equal(incremental, full)
        assert np.array_equal(full, networkx_triangles(after))

    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_degenerate_graphs(self, n):
        graph = Graph(n, [(0, 1)] if n == 2 else [])
        touched = np.arange(min(n, 1))
        result = triangles_per_node_incremental(
            graph, graph, touched, triangles_per_node(graph)
        )
        assert result.tolist() == [0] * n

    def test_with_edits_patch_path_bit_identical(self, monkeypatch):
        """added/removed codes route through BitMatrix.with_edits."""
        monkeypatch.setenv("REPRO_DENSE_THRESHOLD", "0")
        monkeypatch.setenv("REPRO_DELTA_THRESHOLD", "1.0")
        rng = np.random.default_rng(11)
        graph = erdos_renyi_graph(30, 0.3, rng=2)
        touched = np.array([1, 5, 9])
        after = touch_rows(graph, touched, rng)
        added = after.edge_codes[~np.isin(after.edge_codes, graph.edge_codes)]
        removed = graph.edge_codes[~np.isin(graph.edge_codes, after.edge_codes)]
        cache = {}
        patched = triangles_per_node_incremental(
            graph, after, touched, triangles_per_node(graph),
            cache=cache, added_codes=added, removed_codes=removed,
        )
        assert np.array_equal(patched, triangles_per_node(after))
        assert "bitmatrix" in cache  # packed honest matrix parked for reuse


class TestDeltaThreshold:
    def test_default_and_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_DELTA_THRESHOLD", raising=False)
        assert delta_threshold() == DEFAULT_DELTA_THRESHOLD
        monkeypatch.setenv("REPRO_DELTA_THRESHOLD", "0.4")
        assert delta_threshold() == 0.4

    def test_predicate_both_sides(self, monkeypatch):
        monkeypatch.setenv("REPRO_DELTA_THRESHOLD", "0.25")
        assert should_use_incremental(100, 25)
        assert not should_use_incremental(100, 26)
        assert not should_use_incremental(2, 1)  # too small to matter
        assert not should_use_incremental(100, 0)  # nothing changed

    @pytest.mark.parametrize("threshold,expected", [("1.0", "incremental"), ("0.0", "fallback")])
    def test_stats_record_the_decision(self, threshold, expected, monkeypatch):
        monkeypatch.setenv("REPRO_DELTA_THRESHOLD", threshold)
        rng = np.random.default_rng(3)
        graph = erdos_renyi_graph(40, 0.3, rng=1)
        touched = np.array([0, 7])
        after = touch_rows(graph, touched, rng)
        reset_delta_stats()
        result = triangles_per_node_incremental(
            graph, after, touched, triangles_per_node(graph)
        )
        stats = delta_stats()
        assert stats[expected] == 1
        assert stats["incremental" if expected == "fallback" else "fallback"] == 0
        # Both sides of the crossover return the exact same integers.
        assert np.array_equal(result, triangles_per_node(after))


class TestCachedCounts:
    def test_cache_filled_and_reused(self, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE_THRESHOLD", "0")
        graph = erdos_renyi_graph(20, 0.4, rng=4)
        cache = {}
        first = triangles_per_node_cached(graph, cache)
        assert np.array_equal(first, triangles_per_node(graph))
        assert isinstance(cache.get("bitmatrix"), BitMatrix)
        assert triangles_per_node_cached(graph, cache) is first


class TestWithEdits:
    def test_patch_equals_repack(self):
        rng = np.random.default_rng(9)
        graph = erdos_renyi_graph(50, 0.2, rng=6)
        touched = np.array([2, 3, 30])
        after = touch_rows(graph, touched, rng)
        added = after.edge_codes[~np.isin(after.edge_codes, graph.edge_codes)]
        removed = graph.edge_codes[~np.isin(graph.edge_codes, after.edge_codes)]
        from repro.utils.sparse import decode_pairs

        add_rows, add_cols = decode_pairs(added, 50)
        drop_rows, drop_cols = decode_pairs(removed, 50)
        patched = BitMatrix.from_graph(graph).with_edits(
            add_rows, add_cols, drop_rows, drop_cols
        )
        assert np.array_equal(patched.rows, BitMatrix.from_graph(after).rows)

    def test_noop_edit_returns_equal_matrix(self):
        graph = erdos_renyi_graph(10, 0.5, rng=0)
        packed = BitMatrix.from_graph(graph)
        empty = np.empty(0, dtype=np.int64)
        assert np.array_equal(packed.with_edits(empty, empty, empty, empty).rows, packed.rows)
