"""Apriori frequent-itemset mining (Agrawal & Srikant, VLDB 1994).

Implemented from scratch as the substrate for the frequent-itemsets-based
countermeasure (§VII-A).  The classic level-wise algorithm: frequent
``k``-itemsets are generated only from frequent ``(k-1)``-itemsets (the
*Apriori property*: every subset of a frequent itemset is frequent), and
support is counted against the transaction database each level.

Transactions here are sets of node ids (the 1-bits of reported adjacency
vectors); the defense only needs small ``max_size``, but the miner is fully
general and tested against brute force.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.utils.validation import check_positive

Itemset = FrozenSet[int]


def apriori(
    transactions: Sequence[Iterable[int]],
    min_support: int,
    max_size: int = 2,
) -> Dict[Itemset, int]:
    """Mine all itemsets of size <= ``max_size`` with support >= ``min_support``.

    Parameters
    ----------
    transactions:
        Sequence of item collections (duplicates within one transaction are
        ignored).
    min_support:
        Minimum number of transactions an itemset must appear in.
    max_size:
        Largest itemset size to mine.

    Returns a dict mapping each frequent itemset (frozenset) to its support.

    >>> found = apriori([{1, 2}, {1, 2, 3}, {1, 3}], min_support=2)
    >>> found[frozenset({1, 2})]
    2
    """
    check_positive(min_support, "min_support")
    check_positive(max_size, "max_size")
    transaction_sets = [frozenset(t) for t in transactions]

    # Level 1: frequent single items.
    item_counts: Dict[int, int] = defaultdict(int)
    for transaction in transaction_sets:
        for item in transaction:
            item_counts[item] += 1
    current: Dict[Itemset, int] = {
        frozenset({item}): count
        for item, count in item_counts.items()
        if count >= min_support
    }
    frequent: Dict[Itemset, int] = dict(current)

    size = 1
    while current and size < max_size:
        size += 1
        candidates = _generate_candidates(list(current.keys()), size)
        if not candidates:
            break
        counts: Dict[Itemset, int] = defaultdict(int)
        for transaction in transaction_sets:
            if len(transaction) < size:
                continue
            for candidate in candidates:
                if candidate <= transaction:
                    counts[candidate] += 1
        current = {
            itemset: count for itemset, count in counts.items() if count >= min_support
        }
        frequent.update(current)
    return frequent


def _generate_candidates(previous: List[Itemset], size: int) -> List[Itemset]:
    """Join step + prune step of Apriori.

    Joins pairs of frequent (size-1)-itemsets sharing ``size - 2`` items and
    prunes candidates with an infrequent subset.
    """
    previous_set = set(previous)
    candidates: set[Itemset] = set()
    sorted_prev = [tuple(sorted(itemset)) for itemset in previous]
    sorted_prev.sort()
    for a, b in combinations(sorted_prev, 2):
        if a[:-1] == b[:-1]:
            candidate = frozenset(a) | frozenset(b)
            if len(candidate) != size:
                continue
            if all(
                frozenset(subset) in previous_set
                for subset in combinations(candidate, size - 1)
            ):
                candidates.add(candidate)
    return list(candidates)


def count_contained_itemsets(
    transaction: Iterable[int], itemsets: Iterable[Itemset]
) -> int:
    """How many of ``itemsets`` are contained in ``transaction``.

    The per-node statistic of the frequent-itemsets countermeasure.
    """
    transaction_set = frozenset(transaction)
    return sum(1 for itemset in itemsets if itemset <= transaction_set)
