"""The three data poisoning attacks against the clustering coefficient (§VI).

The clustering-coefficient estimator corrects the triangle count observed in
the perturbed graph (Eq. 16), so the attacks act by injecting *triangles*
incident to targets.  A triangle needs three edges, which is why MGA here
uses a **prioritized allocation**: fake nodes first connect to each other
(one fake–fake edge per pair) and then both endpoints of the pair claim the
same targets — each shared target closes one triangle (Fig. 5, Cases 1–3).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.base import Attack, ensure_attack_rng
from repro.core.degree_attacks import DegreeRNA, DegreeRVA
from repro.core.threat_model import AttackerKnowledge, ThreatModel
from repro.graph.adjacency import Graph
from repro.ldp.mechanisms import perturb_degree
from repro.protocols.base import FakeReport
from repro.utils.rng import RngLike


class ClusteringRVA(DegreeRVA):
    """Random Value Attack on the clustering coefficient.

    Identical crafting to the degree-centrality RVA (§VI states the same
    procedure): organic edges plus random new connections up to the budget,
    sent unperturbed, with a degree drawn from the whole degree space.
    Triangles incident to targets appear only by chance.
    """

    name = "RVA"


class ClusteringRNA(DegreeRNA):
    """Random Node Attack on the clustering coefficient.

    One crafted edge to a random target, everything honestly perturbed; the
    degree is computed from the connections and Laplace-perturbed.  A single
    extra edge almost never closes a triangle, hence RNA's weakness here.
    """

    name = "RNA"


class ClusteringMGA(Attack):
    """Maximal Gain Attack on the clustering coefficient.

    Fake nodes are grouped into pairs.  Each pair claims (i) the fake–fake
    edge and (ii) a shared set of ``min(budget - 1, r)`` targets — every
    shared target closes one triangle through the pair.  Crafted connections
    are sent unperturbed; the reported degree is the connection count,
    Laplace-perturbed as the protocol prescribes.

    Parameters
    ----------
    prioritize_fake_edges:
        The paper's allocation (default).  When False, fake nodes spend
        their entire budget on targets without pairing up — no fake–fake
        edge means no new triangles, which is exactly what the ablation
        bench demonstrates (DESIGN.md §6).
    respect_budget:
        When False the budget cap is ignored (every pair claims every
        target) — the unconstrained, detectable optimum.
    """

    name = "MGA"

    def __init__(self, prioritize_fake_edges: bool = True, respect_budget: bool = True):
        self.prioritize_fake_edges = bool(prioritize_fake_edges)
        self.respect_budget = bool(respect_budget)

    def craft(
        self,
        graph: Graph,
        threat: ThreatModel,
        knowledge: AttackerKnowledge,
        rng: RngLike = None,
    ) -> Dict[int, FakeReport]:
        generator = ensure_attack_rng(rng)
        budget = (
            knowledge.connection_budget
            if self.respect_budget
            else threat.num_targets + threat.num_fake
        )
        fakes = generator.permutation(threat.fake_users)
        claims: Dict[int, np.ndarray] = {}

        if self.prioritize_fake_edges:
            paired = fakes[: fakes.size - fakes.size % 2].reshape(-1, 2)
            leftover = fakes[fakes.size - fakes.size % 2 :]
            for first, second in paired.tolist():
                shared_count = min(max(0, budget - 1), threat.num_targets)
                shared = (
                    threat.targets
                    if shared_count >= threat.num_targets
                    else generator.choice(threat.targets, size=shared_count, replace=False)
                )
                claims[first] = np.union1d([second], shared)
                claims[second] = np.union1d([first], shared)
            for fake in leftover.tolist():
                claims[fake] = self._targets_only(threat, budget, generator)
        else:
            for fake in fakes.tolist():
                claims[fake] = self._targets_only(threat, budget, generator)

        overrides: Dict[int, FakeReport] = {}
        for fake, claimed in claims.items():
            reported = float(
                perturb_degree(
                    float(claimed.size), knowledge.degree_epsilon, rng=generator
                )[0]
            )
            overrides[int(fake)] = FakeReport(
                claimed_neighbors=claimed, reported_degree=reported
            )
        return overrides

    def _targets_only(
        self, threat: ThreatModel, budget: int, generator: np.random.Generator
    ) -> np.ndarray:
        count = min(budget, threat.num_targets)
        if count >= threat.num_targets:
            return threat.targets
        return np.sort(generator.choice(threat.targets, size=count, replace=False))
