"""Batched-vs-scalar kernel A/B on Fig. 9 (clustering coefficient vs eps).

Runs the same figure twice at equal settings — once through the cross-trial
batched kernels (``REPRO_BATCH_TRIALS=1``, the default) and once through
the per-trial scalar path (``REPRO_BATCH_TRIALS=0``) — and asserts the two
arms are **sha256-identical** over every raw trial gain before comparing
wall-clocks.  Identity is the contract that lets the batched path reuse the
scalar path's cache entries without a ``CACHE_VERSION`` bump; the timing
delta is the whole point of the batching.

Both arm wall-clocks land in ``benchmarks/BENCH_timings.json``
(``bench_kernels/batched`` and ``bench_kernels/scalar``), so the trajectory
file tracks the kernel speedup across commits.  The in-test assertion is
deliberately loose — shared CI runners are noisy; the recorded trajectory
is the real measure.
"""

import hashlib
import json
import os
import time

from conftest import bench_config, emit, record_timing

from repro.engine.kernels import BATCH_TRIALS_ENV
from repro.experiments.figures import fig9
from repro.telemetry.core import Tracer, use_tracer

DATASET = "facebook"


def _sha256_of(result):
    samples = {series: curve for series, curve in sorted(result.samples.items())}
    return hashlib.sha256(json.dumps(samples).encode("ascii")).hexdigest()


def _run_arm(batch_trials):
    config = bench_config(DATASET)
    previous = os.environ.get(BATCH_TRIALS_ENV)
    os.environ[BATCH_TRIALS_ENV] = batch_trials
    try:
        with use_tracer(Tracer()) as tracer:
            start = time.perf_counter()
            result = fig9(DATASET, config)
            seconds = time.perf_counter() - start
    finally:
        if previous is None:
            del os.environ[BATCH_TRIALS_ENV]
        else:
            os.environ[BATCH_TRIALS_ENV] = previous
    return result, seconds, dict(tracer.counters)


def test_batched_vs_scalar_kernels():
    scalar_result, scalar_seconds, scalar_counters = _run_arm("0")
    batched_result, batched_seconds, batched_counters = _run_arm("1")

    # Each arm really exercised its own path.
    assert scalar_counters.get("kernel.scalar", 0) > 0
    assert "kernel.batched" not in scalar_counters
    assert batched_counters.get("kernel.batched", 0) > 0

    assert _sha256_of(batched_result) == _sha256_of(scalar_result), (
        "batched kernels diverged from the scalar path"
    )

    speedup = scalar_seconds / batched_seconds if batched_seconds else float("inf")
    emit(
        "kernels_ab",
        f"fig9/{DATASET} batched-vs-scalar kernel A/B "
        f"({batched_counters.get('kernel.batched', 0)} batched tasks):\n"
        f"  scalar  ({BATCH_TRIALS_ENV}=0)  {scalar_seconds:7.2f}s\n"
        f"  batched ({BATCH_TRIALS_ENV}=1)  {batched_seconds:7.2f}s\n"
        f"  speedup: {speedup:.2f}x",
    )
    record_timing("bench_kernels/scalar", scalar_seconds)
    record_timing("bench_kernels/batched", batched_seconds)

    # Generous bound only — the >=2x target is tracked in BENCH_timings.json.
    assert batched_seconds < scalar_seconds * 1.2, (
        f"batched kernels slower than scalar: "
        f"{batched_seconds:.2f}s vs {scalar_seconds:.2f}s"
    )
