"""Tests for the experiment CLI."""

import io

import pytest

from repro.experiments.cli import ARTIFACTS, build_parser, run


class TestParser:
    def test_artifact_choices(self):
        assert "fig6" in ARTIFACTS and "table2" in ARTIFACTS and "fig15" in ARTIFACTS

    def test_parses_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.dataset == "facebook"
        assert args.trials == 2

    def test_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--dataset", "twitter"])


class TestRun:
    def test_list(self):
        out = io.StringIO()
        assert run(["list"], out=out) == 0
        text = out.getvalue()
        assert "table2" in text and "fig14" in text

    def test_table2(self):
        out = io.StringIO()
        assert run(["table2", "--scale", "0.05"], out=out) == 0
        assert "facebook" in out.getvalue()

    def test_fig6_tiny(self):
        out = io.StringIO()
        code = run(
            ["fig6", "--dataset", "facebook", "--scale", "0.04", "--trials", "1"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "MGA" in text and "epsilon" in text

    def test_fig12a_tiny(self):
        out = io.StringIO()
        code = run(["fig12a", "--scale", "0.04", "--trials", "1"], out=out)
        assert code == 0
        assert "Detect1" in out.getvalue()

    def test_fig14_tiny(self):
        out = io.StringIO()
        code = run(["fig14", "--scale", "0.03", "--trials", "1"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "LF-GDPR" in text and "LDPGen" in text


class TestScenarioCommands:
    def test_list_shows_paper_and_extensions(self):
        out = io.StringIO()
        assert run(["scenario", "list"], out=out) == 0
        text = out.getvalue()
        assert "fig6" in text and "xprod/protocol-duel-mga" in text

    def test_list_extensions_only(self):
        out = io.StringIO()
        assert run(["scenario", "list", "--extensions"], out=out) == 0
        text = out.getvalue()
        assert "xprod/" in text and "fig6" not in text

    def test_list_unknown_tag_fails(self):
        out = io.StringIO()
        assert run(["scenario", "list", "--tag", "nonesuch"], out=out) == 1

    def test_run_scenario_tiny(self):
        out = io.StringIO()
        code = run(
            ["scenario", "run", "xprod/protocol-duel-mga",
             "--scale", "0.02", "--trials", "1", "--no-cache"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "LF-GDPR/MGA" in text and "LDPGen/MGA" in text

    def test_run_scenario_dataset_override(self):
        out = io.StringIO()
        code = run(
            ["scenario", "run", "fig6", "--dataset", "enron",
             "--scale", "0.01", "--trials", "1", "--no-cache"],
            out=out,
        )
        assert code == 0
        assert "enron" in out.getvalue()

    def test_run_unknown_scenario(self):
        with pytest.raises(KeyError, match="fig99"):
            run(["scenario", "run", "fig99"], out=io.StringIO())

    def test_record_then_check_roundtrip(self, tmp_path):
        out = io.StringIO()
        code = run(
            ["scenario", "record", "fig12a", "--dir", str(tmp_path),
             "--scale", "0.02", "--trials", "1"],
            out=out,
        )
        assert code == 0
        assert (tmp_path / "fig12a.json").is_file()
        out = io.StringIO()
        assert run(["scenario", "check", "fig12a", "--dir", str(tmp_path)], out=out) == 0
        assert "ok" in out.getvalue()

    def test_check_without_fixtures_fails(self, tmp_path):
        out = io.StringIO()
        assert run(["scenario", "check", "--dir", str(tmp_path)], out=out) == 1
        assert "no golden fixtures" in out.getvalue()

    def test_check_named_scenario_without_fixture_reports_missing(self, tmp_path):
        out = io.StringIO()
        assert run(["scenario", "check", "fig6", "--dir", str(tmp_path)], out=out) == 1
        assert "MISSING fig6" in out.getvalue()

    def test_run_table2_dataset_override(self):
        out = io.StringIO()
        code = run(
            ["scenario", "run", "table2", "--dataset", "enron", "--scale", "0.02"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "enron" in text and "facebook" not in text

    def test_check_reports_drift(self, tmp_path):
        import json

        run(
            ["scenario", "record", "fig12a", "--dir", str(tmp_path),
             "--scale", "0.02", "--trials", "1"],
            out=io.StringIO(),
        )
        path = tmp_path / "fig12a.json"
        fixture = json.loads(path.read_text())
        fixture["panels"]["Fig12a"]["series"]["Detect1"]["mean"][0] += 0.5
        path.write_text(json.dumps(fixture))
        out = io.StringIO()
        assert run(["scenario", "check", "fig12a", "--dir", str(tmp_path)], out=out) == 1
        assert "DRIFT" in out.getvalue()

    def test_scenario_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])


class TestTraceCommands:
    """The --trace/--progress run options and the trace summarize command."""

    def test_traced_scenario_run_writes_trace_and_manifest(self, tmp_path):
        from repro.telemetry.core import NULL_TRACER, current_tracer
        from repro.telemetry.export import RunManifest, load_trace, manifest_path

        trace_file = tmp_path / "run.jsonl"
        out = io.StringIO()
        code = run(
            ["scenario", "run", "fig6", "--scale", "0.02", "--no-cache",
             "--trace", str(trace_file)],
            out=out,
        )
        assert code == 0
        assert f"trace written to {trace_file}" in out.getvalue()
        assert current_tracer() is NULL_TRACER, "CLI must restore the tracer"

        spans, counters = load_trace(trace_file)
        names = {span["name"] for span in spans}
        assert {"scenario.run", "session.run", "task.execute"} <= names
        assert counters["batch.tasks"] == counters["cache.miss"] > 0

        manifest = RunManifest.load(manifest_path(trace_file))
        assert manifest.scenarios == ["fig6"]
        assert manifest.task_count == counters["batch.tasks"]
        assert manifest.config["trials"] == 2
        assert manifest.wall_seconds > 0

    def test_progress_goes_to_stderr(self, tmp_path, capsys):
        out = io.StringIO()
        code = run(
            ["scenario", "run", "fig6", "--scale", "0.02", "--trials", "1",
             "--no-cache", "--progress"],
            out=out,
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "batch done:" in captured.err
        assert "Fig6" in out.getvalue()

    def test_trace_summarize(self, tmp_path):
        trace_file = tmp_path / "run.jsonl"
        run(
            ["scenario", "run", "fig6", "--scale", "0.02", "--trials", "1",
             "--no-cache", "--trace", str(trace_file)],
            out=io.StringIO(),
        )
        out = io.StringIO()
        assert run(["trace", "summarize", str(trace_file)], out=out) == 0
        text = out.getvalue()
        assert "task.execute" in text
        assert "batch.tasks" in text
        assert "scenarios=fig6" in text

    def test_trace_summarize_missing_file(self, tmp_path):
        out = io.StringIO()
        assert run(["trace", "summarize", str(tmp_path / "nope.jsonl")], out=out) == 1
        assert "no trace file" in out.getvalue()
