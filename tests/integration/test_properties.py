"""Property-based tests over the attack/protocol interaction layer.

These check structural invariants for arbitrary small graphs and threat
models, complementing the example-based suites.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering_attacks import ClusteringMGA
from repro.core.degree_attacks import DegreeMGA, DegreeRNA, DegreeRVA
from repro.core.threat_model import AttackerKnowledge, ThreatModel
from repro.graph.adjacency import Graph
from repro.protocols.base import FakeReport, apply_degree_overrides, apply_overrides
from repro.protocols.lfgdpr import LFGDPRProtocol
from repro.utils.sparse import pair_count


@st.composite
def graph_and_threat(draw):
    """A random small graph plus a valid threat model on it."""
    n = draw(st.integers(min_value=8, max_value=40))
    max_edges = min(pair_count(n), 60)
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ).filter(lambda pair: pair[0] != pair[1]),
            max_size=max_edges,
        )
    )
    graph = Graph(n, edges)
    node_ids = list(range(n))
    num_fake = draw(st.integers(min_value=1, max_value=max(1, n // 4)))
    num_targets = draw(st.integers(min_value=1, max_value=max(1, n // 4)))
    permutation = draw(st.permutations(node_ids))
    threat = ThreatModel(
        fake_users=permutation[:num_fake],
        targets=permutation[num_fake : num_fake + num_targets],
        num_nodes=n,
    )
    return graph, threat


ATTACK_FACTORIES = [DegreeRVA, DegreeRNA, DegreeMGA, ClusteringMGA]


class TestCraftingInvariants:
    @given(data=graph_and_threat(), seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_reports_always_valid(self, data, seed):
        """Every attack produces one structurally valid report per fake user."""
        graph, threat = data
        protocol = LFGDPRProtocol(epsilon=4.0)
        knowledge = AttackerKnowledge.from_protocol(protocol, graph)
        for factory in ATTACK_FACTORIES:
            overrides = factory().craft(graph, threat, knowledge, rng=seed)
            assert sorted(overrides) == threat.fake_users.tolist()
            for fake, report in overrides.items():
                claims = report.claimed_neighbors
                assert fake not in claims
                assert np.unique(claims).size == claims.size
                if claims.size:
                    assert claims.min() >= 0 and claims.max() < threat.num_nodes

    @given(data=graph_and_threat(), seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_collection_with_any_attack_is_well_formed(self, data, seed):
        graph, threat = data
        protocol = LFGDPRProtocol(epsilon=4.0)
        knowledge = AttackerKnowledge.from_protocol(protocol, graph)
        overrides = DegreeMGA().craft(graph, threat, knowledge, rng=seed)
        reports = protocol.collect(graph, seed, overrides=overrides)
        assert reports.num_nodes == graph.num_nodes
        degrees = reports.perturbed_graph.degrees()
        assert degrees.sum() == 2 * reports.perturbed_graph.num_edges


class TestOverrideInvariants:
    @given(
        n=st.integers(min_value=4, max_value=30),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_replace_mode_owns_exactly_its_pairs(self, n, data):
        """After apply_overrides, a replace-mode user's neighbourhood equals
        its claims and nothing else changed."""
        max_edges = min(pair_count(n), 40)
        edges = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ).filter(lambda pair: pair[0] != pair[1]),
                max_size=max_edges,
            )
        )
        graph = Graph(n, edges)
        fake = data.draw(st.integers(min_value=0, max_value=n - 1))
        claims = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1).filter(lambda v: v != fake),
                max_size=5,
            )
        )
        overrides = {fake: FakeReport(claimed_neighbors=claims, reported_degree=1.0)}
        result, overridden = apply_overrides(graph, overrides)
        assert overridden.tolist() == [fake]
        assert sorted(result.neighbors(fake).tolist()) == sorted(set(claims))
        # Pairs not touching the fake are identical.
        others = [u for u in range(n) if u != fake]
        for u in others:
            expected = [v for v in graph.neighbors(u).tolist() if v != fake]
            actual = [v for v in result.neighbors(u).tolist() if v != fake]
            assert expected == actual

    @given(
        degrees=st.lists(st.floats(0, 100, allow_nan=False), min_size=3, max_size=20),
        delta=st.floats(-5, 5, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_augment_degree_shift(self, degrees, delta):
        noisy = np.array(degrees)
        overrides = {
            1: FakeReport(
                claimed_neighbors=np.empty(0, dtype=np.int64),
                reported_degree=0.0,
                augment=True,
                degree_delta=delta,
            )
        }
        result = apply_degree_overrides(noisy, overrides)
        assert result[1] == pytest.approx(noisy[1] + delta)
        assert np.array_equal(np.delete(result, 1), np.delete(noisy, 1))
