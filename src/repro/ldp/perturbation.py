"""Sparse simulation of randomized response over whole graphs.

Applying bitwise randomized response to every adjacency bit vector of an
N-node graph touches N·(N-1) bits — prohibitive beyond a few thousand nodes.
This module produces a perturbed graph with *exactly the same distribution*
at O(E + #flipped-non-edges) cost:

* each existing edge survives independently with probability ``p``;
* the number of non-edges flipped to edges is ``Binomial(#non-edges, 1-p)``,
  and the flipped pairs are sampled uniformly among non-edges.

Following the paper's estimator model (Eq. 16 and the Fig. 4 case analysis,
which assume a single retention probability ``p`` per undirected edge), the
perturbation is applied once per *unordered pair*; see DESIGN.md §2 for why
this symmetric interpretation is the one consistent with the paper's
calibration formulas.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.graph.adjacency import Graph
from repro.graph.streaming import iter_packed_row_blocks
from repro.ldp.mechanisms import rr_keep_probability
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.sparse import merge_sorted_disjoint, pair_count, sample_pairs_excluding
from repro.utils.validation import check_non_negative


def _perturbed_codes(
    codes: np.ndarray,
    num_nodes: int,
    non_edges: int,
    keep: float,
    generator: np.random.Generator,
) -> np.ndarray:
    """One randomized-response draw as sorted pair codes.

    This is the single sampling core every perturbation entry point funnels
    through, so their RNG consumption is draw-for-draw identical by
    construction: one uniform block over the edges, one binomial for the
    flip count, then the rejection-sampling draws of
    :func:`~repro.utils.sparse.sample_pairs_excluding`.
    """
    survivors = codes[generator.random(codes.size) < keep]
    flip_count = int(generator.binomial(non_edges, 1.0 - keep)) if non_edges > 0 else 0
    flipped = sample_pairs_excluding(num_nodes, flip_count, codes, generator)
    # Survivors are a sorted subset of the original codes; flipped pairs were
    # sampled outside them.  Sorting the (smaller) flipped set and merging two
    # disjoint sorted arrays replaces the np.unique re-sort over the full
    # near-dense edge set the previous construction paid.
    return merge_sorted_disjoint(survivors, np.sort(flipped))


def perturb_graph(graph: Graph, epsilon: float, rng: RngLike = None) -> Graph:
    """Randomized response over the whole graph, sparsely simulated.

    Returns a new :class:`Graph` drawn from the same distribution as flipping
    every upper-triangle adjacency bit independently with probability
    ``1 - p`` where ``p = e^eps / (1 + e^eps)``.
    """
    generator = ensure_rng(rng)
    keep = rr_keep_probability(epsilon)
    n = graph.num_nodes
    codes = graph.edge_codes
    non_edges = pair_count(n) - codes.size
    merged = _perturbed_codes(codes, n, non_edges, keep, generator)
    return Graph.from_codes(n, merged, assume_sorted_unique=True)


def perturb_graph_batch(
    graph: Graph, epsilon: float, rngs: Sequence[RngLike]
) -> List[Graph]:
    """Randomized response for every trial of one point, in one pass.

    ``rngs`` carries one independent stream per trial (the engine derives
    them with the exact same ``child_rng`` keys as the per-trial path).
    Plane ``t`` of the result is **bit-identical** to
    ``perturb_graph(graph, epsilon, rngs[t])``: each stream makes the same
    draws in the same order — the batching hoists only the draw-free shared
    setup (edge codes, the keep probability, the non-edge count) out of the
    trial loop.  Because the streams are independent, evaluating them
    back-to-back instead of interleaved with other per-trial work is a pure
    reordering with no distributional or numerical effect.
    """
    keep = rr_keep_probability(epsilon)
    n = graph.num_nodes
    codes = graph.edge_codes
    non_edges = pair_count(n) - codes.size
    perturbed: List[Graph] = []
    for rng in rngs:
        generator = ensure_rng(rng)
        merged = _perturbed_codes(codes, n, non_edges, keep, generator)
        perturbed.append(Graph.from_codes(n, merged, assume_sorted_unique=True))
    return perturbed


def perturb_graph_stream(
    graph: Graph,
    epsilon: float,
    rng: RngLike = None,
    *,
    block_rows: int | None = None,
    max_bytes: int | None = None,
) -> Tuple[Graph, Iterator[Tuple[int, int, np.ndarray]]]:
    """Randomized response served as packed per-user row blocks.

    Returns ``(perturbed, blocks)``: the perturbed graph in its sparse pair
    code form — the irreducible O(E') representation — plus an iterator of
    ``(start, stop, rows)`` packed uint64 row blocks of its adjacency
    matrix, block height honouring ``REPRO_DENSE_MAX_BYTES`` by default.
    The full ``n^2/8``-byte matrix is never materialized: each block is
    built on demand from the sorted codes and dropped when the consumer
    moves on.

    RNG identity: the sampling happens **eagerly in this call** through the
    same core as :func:`perturb_graph` — the stream consumes its generator
    draw-for-draw identically to the in-memory path, and ``perturbed``
    equals ``perturb_graph(graph, epsilon, rng)`` bit for bit for any block
    height (block iteration itself draws nothing).
    """
    perturbed = perturb_graph(graph, epsilon, rng)
    blocks = iter_packed_row_blocks(perturbed, block_rows, max_bytes=max_bytes)
    return perturbed, blocks


def expected_perturbed_degree(degree: float, num_nodes: int, epsilon: float) -> float:
    """Expected degree of a node after randomized response.

    ``E[d~] = d p + (N - 1 - d)(1 - p)``: surviving true edges plus flipped
    non-edges.  This is the quantity the attacker computes from public
    protocol parameters to size its connection budget.
    """
    check_non_negative(degree, "degree")
    keep = rr_keep_probability(epsilon)
    return degree * keep + (num_nodes - 1 - degree) * (1.0 - keep)


def expected_perturbed_average_degree(graph: Graph, epsilon: float) -> float:
    """Expected *average* degree of the perturbed graph.

    The paper's attacks cap each fake node's crafted connection count at this
    value (``d~`` in Theorems 1 and 2) so that fake reports blend in with the
    degree distribution genuine perturbed reports exhibit.
    """
    if graph.num_nodes == 0:
        return 0.0
    average = graph.degrees().mean()
    return expected_perturbed_degree(float(average), graph.num_nodes, epsilon)


def attacker_connection_budget(graph: Graph, epsilon: float) -> int:
    """Number of crafted connections a fake node may claim without standing out.

    ``floor`` of :func:`expected_perturbed_average_degree`, but at least 1 so
    every attack can act even at extreme privacy settings.
    """
    return max(1, int(expected_perturbed_average_degree(graph, epsilon)))
