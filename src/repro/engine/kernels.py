"""Cross-trial batched execution of same-point task groups.

A compiled scenario batch lays its trials out innermost, so the cache-miss
tasks an executor receives arrive as runs of trials that differ *only* in
their derived seed — same graph, metric, attack, protocol, epsilon, beta,
gamma, defense and labelling.  :func:`execute_tasks_grouped` exploits that:
it splits a single-graph task list into those point groups and routes every
eligible group through one batched kernel pass
(:meth:`~repro.protocols.lfgdpr.LFGDPRProtocol.collect_paired_batch` over
the stacked bit-planes of :class:`~repro.graph.bittensor.BitTensor`)
instead of per-trial scalar evaluation.

Bit-identity contract: the batched path replays, per task, the exact child
RNG streams and the exact estimator arithmetic of
:func:`repro.core.gain.evaluate_attack` — batching only reorders draws
*across* independent streams and amortizes exact-integer kernel passes, so
gains (and therefore golden results and cache entries) are unchanged.
Scalar fallbacks keep everything else honest: singleton groups, defended
tasks, protocols without a batch surface, unpaired collection mode, and
``REPRO_BATCH_TRIALS=0``.

Telemetry: each task gets its usual ``task.execute`` span (wrapping its
per-trial threat/craft work) whatever path runs it, so span accounting is
indistinguishable from the scalar executor; ``kernel.batched`` /
``kernel.scalar`` counters record how many tasks each path served.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.gain import METRICS, metric_estimates, paired_collection_enabled
from repro.core.threat_model import AttackerKnowledge, ThreatModel
from repro.engine.registry import ATTACKS, PROTOCOLS
from repro.engine.tasks import TrialTask
from repro.graph.adjacency import Graph
from repro.telemetry.core import current_tracer
from repro.utils.rng import child_rng

#: Env knob: set to ``"0"`` to disable cross-trial batching (scalar path).
BATCH_TRIALS_ENV = "REPRO_BATCH_TRIALS"


def batch_trials_enabled() -> bool:
    """Whether same-point trial groups run through the batched kernels."""
    return os.environ.get(BATCH_TRIALS_ENV, "1") != "0"


def point_key(task: TrialTask) -> Tuple:
    """The figure-point identity of a task: its identity minus the seed.

    Tasks sharing a point key are trials of one sweep point — the unit the
    batched kernels stack.  Mirrors ``IDENTITY_FIELDS`` so any field that
    changes what a task computes also splits the batch.
    """
    return (
        task.graph_key,
        task.metric,
        task.attack,
        task.protocol,
        task.epsilon,
        task.beta,
        task.gamma,
        task.defense,
        task.defense_args,
        task.labels_key,
    )


def group_by_point(tasks: Sequence[TrialTask]) -> List[List[int]]:
    """Task indices grouped by :func:`point_key`, input order preserved."""
    groups: "OrderedDict[Tuple, List[int]]" = OrderedDict()
    for index, task in enumerate(tasks):
        groups.setdefault(point_key(task), []).append(index)
    return list(groups.values())


def _batch_protocol(tasks: Sequence[TrialTask]):
    """The shared protocol instance for an eligible group, else ``None``.

    Singletons gain nothing; defended tasks run extra protocol rounds the
    batch surface does not model; unknown metrics and the legacy two-run
    collection mode must keep their scalar semantics; and the protocol
    itself must offer ``collect_paired_batch`` (LDPGen regenerates a
    synthetic graph per run and has no stackable bit-plane form).  Protocol
    construction is deterministic in epsilon and collection is stateless,
    so one instance can serve every trial of the point.
    """
    first = tasks[0]
    if (
        len(tasks) < 2
        or first.defense
        or first.metric not in METRICS
        or not batch_trials_enabled()
        or not paired_collection_enabled()
    ):
        return None
    try:
        protocol = PROTOCOLS.create(first.protocol, epsilon=first.epsilon)
    except KeyError:
        return None
    if getattr(protocol, "collect_paired_batch", None) is None:
        return None
    return protocol


def execute_tasks_grouped(
    tasks: Sequence[TrialTask],
    graph: Graph,
    labels: Optional[np.ndarray] = None,
) -> List[float]:
    """Gains of a single-graph task list, batching same-point trial groups.

    The drop-in body of ``SerialExecutor.execute`` and the worker chunk
    runner: output order matches input order, and every task is reported
    under its own ``task.execute`` span exactly as the scalar loop does.
    """
    from repro.engine.executors import execute_task

    tracer = current_tracer()
    gains: List[Optional[float]] = [None] * len(tasks)
    for indices in group_by_point(tasks):
        group = [tasks[index] for index in indices]
        protocol = _batch_protocol(group)
        if protocol is not None:
            tracer.counter("kernel.batched", len(group))
            computed = _execute_point_batched(group, graph, protocol, labels)
        else:
            tracer.counter("kernel.scalar", len(group))
            computed = [execute_task(task, graph, labels) for task in group]
        for index, gain in zip(indices, computed):
            gains[index] = gain
    return [float(gain) for gain in gains]


def _execute_point_batched(
    tasks: Sequence[TrialTask],
    graph: Graph,
    protocol,
    labels: Optional[np.ndarray],
) -> List[float]:
    """All trials of one point through one batched collection.

    Phase one replays each task's scalar prologue under its own
    ``task.execute`` span — threat sampling, attacker knowledge, crafting,
    fake-report validation and the protocol-seed derivation, with the same
    child streams as :func:`~repro.core.gain.evaluate_attack`.  Phase two
    collects every trial at once; phase three estimates per trial through
    the shared :func:`~repro.core.gain.metric_estimates` helper.
    """
    metric = tasks[0].metric
    if metric == "modularity" and labels is None:
        raise ValueError("modularity evaluation requires community labels")
    tracer = current_tracer()
    crafted = []
    for task in tasks:
        with tracer.span(
            "task.execute",
            figure=task.figure, series=task.series, attack=task.attack,
            value=task.value, trial=task.trial,
        ):
            attack = ATTACKS.create(task.attack)
            threat = ThreatModel.sample(
                graph, task.beta, task.gamma, rng=child_rng(task.seed, "threat")
            )
            knowledge = AttackerKnowledge.from_protocol(protocol, graph)
            overrides = attack.craft(
                graph, threat, knowledge, rng=child_rng(task.seed, "attack-craft")
            )
            missing = np.setdiff1d(
                threat.fake_users, np.fromiter(overrides.keys(), dtype=np.int64)
            )
            if missing.size:
                raise ValueError(
                    f"attack left fake users without reports: {missing.tolist()}"
                )
            protocol_seed = int(
                child_rng(task.seed, "protocol-run").integers(2**63 - 1)
            )
            crafted.append((threat, overrides, protocol_seed))

    runs = protocol.collect_paired_batch(
        graph, [seed for _, _, seed in crafted], metric=metric, labels=labels
    )
    gains = []
    for (threat, overrides, _), run in zip(crafted, runs):
        before_reports = run.before
        after_reports = run.after(overrides)
        before, after = metric_estimates(
            protocol, metric, before_reports, after_reports, threat.targets, labels
        )
        gains.append(float(np.abs(after - before).sum()))
    return gains
