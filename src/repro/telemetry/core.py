"""Zero-overhead-when-off tracing and metrics primitives.

The engine, the stores and the scenario layer all report through one
process-local tracer reached via :func:`current_tracer`.  By default that
tracer is the :data:`NULL_TRACER` singleton: every call is a no-op method on
a stateless object, no :class:`Span` is ever allocated, and — critically —
nothing here ever touches RNG state, so enabling telemetry can never change
a result (the golden suite replays bit-identical with tracing on).

Activation paths:

* ``EngineSession(telemetry=Tracer())`` installs a tracer for the session's
  lifetime and restores the previous one on close;
* ``REPRO_TRACE=1`` promotes the process default to a live tracer the first
  time anything asks for it (the CLI uses this for ad-hoc runs);
* :func:`set_tracer` / :func:`use_tracer` for explicit control (tests, the
  ``scenario run --trace`` path).

A :class:`Tracer` records three kinds of facts:

* **spans** — named intervals with monotonic-ns start/end, free-form
  attributes and a parent id (``tracer.span("task.execute", trial=3)`` as a
  context manager);
* **counters** — monotonically accumulated integers/floats
  (``tracer.counter("cache.hit")``);
* **timers** — sugar over counters recording both total nanoseconds and
  call counts (``with tracer.timer("result_store.append"): ...``).

Worker processes build their own short-lived tracer per chunk and ship its
spans/counters back with the chunk results; the parent re-parents them under
its fan-out span via :meth:`Tracer.adopt` (see
:mod:`repro.engine.executors`).

Progress bars and future early-stop hooks attach as
:class:`~repro.telemetry.progress.TelemetryCallbacks` via
:meth:`Tracer.add_callback`; the engine drivers fire ``batch_start`` /
``task_done`` / ``batch_done`` and the scenario aggregator ``point_done``
without knowing who listens.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional, Union

#: Environment variable promoting the process-default tracer to a live one.
TRACE_ENV = "REPRO_TRACE"

Number = Union[int, float]


class Span:
    """One named interval: monotonic-ns bounds, attributes, parent link.

    Spans are context managers handed out (already started) by
    :meth:`Tracer.span`; exiting the ``with`` block stamps ``end_ns`` and
    files the span with its tracer.  Instant "event" spans (the scenario
    aggregator's per-point records) simply carry ``end_ns == start_ns``.
    """

    __slots__ = ("name", "span_id", "parent_id", "start_ns", "end_ns",
                 "attributes", "_tracer")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start_ns: int,
        attributes: Dict[str, object],
        tracer: Optional["Tracer"] = None,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ns = start_ns
        self.end_ns = start_ns
        self.attributes = attributes
        self._tracer = tracer

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def set(self, **attributes) -> "Span":
        """Merge attributes into the span (chainable)."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        if self._tracer is not None:
            self._tracer._finish(self)

    def to_payload(self) -> dict:
        """The picklable/JSON form workers ship and exporters write."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Span":
        span = cls(
            payload["name"], payload["span_id"], payload.get("parent_id"),
            payload["start_ns"], dict(payload.get("attributes", {})),
        )
        span.end_ns = payload["end_ns"]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"{self.duration_ns / 1e6:.3f}ms, {self.attributes})"
        )


class _NullSpan:
    """The one span-shaped object the no-op path ever hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def set(self, **attributes) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _Timer:
    """Context manager behind :meth:`Tracer.timer`."""

    __slots__ = ("_tracer", "_name", "_start")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_Timer":
        self._start = time.monotonic_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.monotonic_ns() - self._start
        self._tracer.counter(self._name + ".ns", elapsed)
        self._tracer.counter(self._name + ".calls", 1)


class Tracer:
    """A live, process-local recorder of spans, counters and callbacks.

    Not thread-safe by design: the engine is process-parallel, and each
    worker records into its own chunk tracer whose payload the parent
    adopts.  ``spans`` holds *finished* spans in completion order.
    """

    enabled = True

    def __init__(self):
        self.spans: List[Span] = []
        self.counters: Dict[str, Number] = {}
        self.callbacks: List[object] = []
        self._stack: List[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes) -> Span:
        """Start (and return) a span; close it by exiting the ``with``."""
        span = Span(
            name,
            self._next_id,
            self._stack[-1].span_id if self._stack else None,
            time.monotonic_ns(),
            attributes,
            tracer=self,
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def event(self, name: str, **attributes) -> Span:
        """An instant span (start == end), filed immediately."""
        with self.span(name, **attributes) as span:
            pass
        return span

    def _finish(self, span: Span) -> None:
        span.end_ns = time.monotonic_ns()
        # Out-of-order exits (rare: generators, explicit __exit__) still
        # remove the right entry instead of corrupting the ancestry stack.
        for index in range(len(self._stack) - 1, -1, -1):
            if self._stack[index] is span:
                del self._stack[index]
                break
        self.spans.append(span)

    # ------------------------------------------------------------------
    # Counters and timers
    # ------------------------------------------------------------------
    def counter(self, name: str, value: Number = 1) -> None:
        """Accumulate ``value`` into the named counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def timer(self, name: str) -> _Timer:
        """Record a block's wall time into ``<name>.ns`` / ``<name>.calls``."""
        return _Timer(self, name)

    # ------------------------------------------------------------------
    # Callback dispatch (progress bars, early-stop hooks)
    # ------------------------------------------------------------------
    def add_callback(self, callback) -> None:
        """Attach a :class:`~repro.telemetry.progress.TelemetryCallbacks`."""
        self.callbacks.append(callback)

    def batch_start(self, total: int) -> None:
        for callback in self.callbacks:
            callback.on_batch_start(total)

    def task_done(self, task, gain: float) -> None:
        for callback in self.callbacks:
            callback.on_task_done(task, gain)

    def point_done(self, figure: str, series: str, value: float,
                   mean: float, stderr: float, trials: int) -> None:
        for callback in self.callbacks:
            callback.on_point_done(figure, series, value, mean, stderr, trials)

    def batch_done(self, stats: dict) -> None:
        for callback in self.callbacks:
            callback.on_batch_done(stats)

    # ------------------------------------------------------------------
    # Worker payload exchange
    # ------------------------------------------------------------------
    def spans_payload(self) -> List[dict]:
        """Finished spans as payload dicts (what a worker ships back)."""
        return [span.to_payload() for span in self.spans]

    def adopt(
        self,
        span_payloads: List[dict],
        parent_id: Optional[int] = None,
        counters: Optional[Dict[str, Number]] = None,
    ) -> None:
        """Merge a worker tracer's output into this one.

        Spans get fresh ids from this tracer's sequence; internal
        parent/child links are remapped, and payload roots are re-parented
        under ``parent_id`` (the parent-side fan-out span), so a merged
        trace reads as one tree.  Worker counters accumulate into ours.
        """
        id_map: Dict[int, int] = {}
        for payload in span_payloads:
            id_map[payload["span_id"]] = self._next_id
            self._next_id += 1
        for payload in span_payloads:
            span = Span.from_payload(payload)
            span.span_id = id_map[span.span_id]
            span.parent_id = (
                id_map[span.parent_id]
                if span.parent_id in id_map
                else parent_id
            )
            self.spans.append(span)
        for name, value in (counters or {}).items():
            self.counter(name, value)


class NullTracer:
    """The disabled tracer: stateless, allocation-free, always installed
    unless something turned telemetry on."""

    enabled = False
    #: Class-level empties so accidental reads look like a fresh tracer.
    spans: tuple = ()
    counters: Dict[str, Number] = {}
    callbacks: tuple = ()

    def span(self, name: str, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def counter(self, name: str, value: Number = 1) -> None:
        pass

    def timer(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def add_callback(self, callback) -> None:
        raise RuntimeError(
            "cannot attach callbacks to the disabled tracer; install a "
            "Tracer first (EngineSession(telemetry=...) or set_tracer)"
        )

    def batch_start(self, total: int) -> None:
        pass

    def task_done(self, task, gain: float) -> None:
        pass

    def point_done(self, figure, series, value, mean, stderr, trials) -> None:
        pass

    def batch_done(self, stats: dict) -> None:
        pass

    def spans_payload(self) -> List[dict]:
        return []

    def adopt(self, span_payloads, parent_id=None, counters=None) -> None:
        pass


#: The process-wide disabled tracer (identity-comparable singleton).
NULL_TRACER = NullTracer()

TracerLike = Union[Tracer, NullTracer]

_TRACER: TracerLike = NULL_TRACER
_env_checked = False


def current_tracer() -> TracerLike:
    """The process-local tracer every instrumentation point reports to.

    Defaults to :data:`NULL_TRACER`; the first call promotes it to a live
    :class:`Tracer` when ``REPRO_TRACE`` is set to anything but ``0``/empty.
    """
    global _TRACER, _env_checked
    if not _env_checked:
        _env_checked = True
        if _TRACER is NULL_TRACER and os.environ.get(TRACE_ENV, "") not in ("", "0"):
            _TRACER = Tracer()
    return _TRACER


def set_tracer(tracer: Optional[TracerLike]) -> TracerLike:
    """Install ``tracer`` (None -> :data:`NULL_TRACER`); returns the previous.

    An explicit install wins over ``REPRO_TRACE`` — setting the null tracer
    after the env promoted one genuinely disables tracing.
    """
    global _TRACER, _env_checked
    _env_checked = True
    previous = _TRACER
    _TRACER = tracer if tracer is not None else NULL_TRACER
    return previous


def reset_env_activation() -> None:
    """Re-arm the one-shot ``REPRO_TRACE`` check (tests toggling the env)."""
    global _env_checked
    _env_checked = False


class use_tracer:
    """Context manager installing a tracer and restoring the previous one."""

    def __init__(self, tracer: Optional[TracerLike]):
        self._tracer = tracer

    def __enter__(self) -> TracerLike:
        self._previous = set_tracer(self._tracer)
        return current_tracer()

    def __exit__(self, *exc_info) -> None:
        set_tracer(self._previous)
