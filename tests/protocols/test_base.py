"""Tests for the protocol interfaces and override plumbing."""

import numpy as np
import pytest

from repro.graph.adjacency import Graph
from repro.protocols.base import (
    FakeReport,
    apply_degree_overrides,
    apply_overrides,
)


@pytest.fixture
def perturbed():
    """A 6-node graph standing in for RR output."""
    return Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)])


class TestFakeReport:
    def test_neighbors_deduplicated_and_sorted(self):
        report = FakeReport(claimed_neighbors=np.array([3, 1, 3]), reported_degree=2.0)
        assert report.claimed_neighbors.tolist() == [1, 3]

    def test_accepts_list(self):
        report = FakeReport(claimed_neighbors=[2, 0], reported_degree=2.0)
        assert report.claimed_neighbors.tolist() == [0, 2]

    def test_frozen(self):
        report = FakeReport(claimed_neighbors=[1], reported_degree=1.0)
        with pytest.raises(AttributeError):
            report.reported_degree = 5.0


class TestApplyOverrides:
    def test_no_overrides_is_identity(self, perturbed):
        graph, overridden = apply_overrides(perturbed, None)
        assert graph is perturbed
        assert overridden.size == 0

    def test_fake_pairs_replaced(self, perturbed):
        overrides = {0: FakeReport(claimed_neighbors=[2, 3], reported_degree=2.0)}
        graph, overridden = apply_overrides(perturbed, overrides)
        # Old edges incident to node 0 are dropped...
        assert not graph.has_edge(0, 1)
        assert not graph.has_edge(0, 5)
        # ...and the claimed edges inserted.
        assert graph.has_edge(0, 2)
        assert graph.has_edge(0, 3)
        assert overridden.tolist() == [0]

    def test_genuine_pairs_untouched(self, perturbed):
        overrides = {0: FakeReport(claimed_neighbors=[2], reported_degree=1.0)}
        graph, _ = apply_overrides(perturbed, overrides)
        for u, v in [(1, 2), (2, 3), (3, 4), (4, 5)]:
            assert graph.has_edge(u, v)

    def test_two_fake_users_claiming_each_other(self, perturbed):
        overrides = {
            0: FakeReport(claimed_neighbors=[1], reported_degree=1.0),
            1: FakeReport(claimed_neighbors=[0], reported_degree=1.0),
        }
        graph, overridden = apply_overrides(perturbed, overrides)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 2)
        assert overridden.tolist() == [0, 1]

    def test_self_loop_claim_rejected(self, perturbed):
        overrides = {0: FakeReport(claimed_neighbors=[0], reported_degree=1.0)}
        with pytest.raises(ValueError, match="self-loop"):
            apply_overrides(perturbed, overrides)

    def test_out_of_range_claim_rejected(self, perturbed):
        overrides = {0: FakeReport(claimed_neighbors=[99], reported_degree=1.0)}
        with pytest.raises(ValueError, match="out-of-range"):
            apply_overrides(perturbed, overrides)

    def test_out_of_range_fake_id_rejected(self, perturbed):
        overrides = {99: FakeReport(claimed_neighbors=[0], reported_degree=1.0)}
        with pytest.raises(ValueError, match="out of range"):
            apply_overrides(perturbed, overrides)


class TestApplyDegreeOverrides:
    def test_replacement(self):
        degrees = np.array([1.0, 2.0, 3.0])
        overrides = {1: FakeReport(claimed_neighbors=[0], reported_degree=42.0)}
        result = apply_degree_overrides(degrees, overrides)
        assert result.tolist() == [1.0, 42.0, 3.0]

    def test_original_untouched(self):
        degrees = np.array([1.0, 2.0])
        overrides = {0: FakeReport(claimed_neighbors=[1], reported_degree=9.0)}
        apply_degree_overrides(degrees, overrides)
        assert degrees.tolist() == [1.0, 2.0]

    def test_no_overrides(self):
        degrees = np.array([1.0, 2.0])
        assert apply_degree_overrides(degrees, None).tolist() == [1.0, 2.0]
