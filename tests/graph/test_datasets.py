"""Tests for repro.graph.datasets (Table II surrogates)."""

import pytest

from repro.graph.datasets import DATASETS, dataset_statistics, load_dataset
from repro.graph.metrics import average_degree


class TestRegistry:
    def test_all_four_datasets_present(self):
        assert set(DATASETS) == {"facebook", "enron", "astroph", "gplus"}

    def test_paper_statistics_recorded(self):
        assert DATASETS["facebook"].paper_nodes == 4039
        assert DATASETS["facebook"].paper_edges == 88234
        assert DATASETS["enron"].paper_nodes == 36692
        assert DATASETS["astroph"].paper_edges == 198110
        assert DATASETS["gplus"].paper_edges == 12238285

    def test_average_degree_property(self):
        spec = DATASETS["facebook"]
        assert spec.paper_average_degree == pytest.approx(2 * 88234 / 4039)

    def test_nodes_at_scale(self):
        spec = DATASETS["enron"]
        assert spec.nodes_at_scale(1.0) == 36692
        assert spec.nodes_at_scale(0.1) == 3669
        assert spec.nodes_at_scale(0.0001) == 64  # floor

    def test_scale_out_of_range(self):
        with pytest.raises(ValueError):
            DATASETS["enron"].nodes_at_scale(1.5)


class TestLoadDataset:
    def test_facebook_full_size_by_default(self):
        g = load_dataset("facebook")
        assert g.num_nodes == 4039

    def test_deterministic_default_load(self):
        assert load_dataset("facebook") == load_dataset("facebook")

    def test_seed_changes_surrogate(self):
        assert load_dataset("facebook", rng=1) != load_dataset("facebook", rng=2)

    @pytest.mark.parametrize("name", ["facebook", "enron", "astroph", "gplus"])
    def test_average_degree_matches_paper(self, name):
        g = load_dataset(name, scale=0.05)
        spec = DATASETS[name]
        target = min(spec.paper_average_degree, g.num_nodes / 4.0)
        assert average_degree(g) == pytest.approx(target, rel=0.25)

    def test_scale_shrinks_graph(self):
        small = load_dataset("enron", scale=0.05)
        bigger = load_dataset("enron", scale=0.1)
        assert small.num_nodes < bigger.num_nodes

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("twitter")

    def test_case_insensitive(self):
        assert load_dataset("Facebook", scale=0.02).num_nodes > 0

    def test_statistics_helper(self):
        nodes, edges = dataset_statistics("facebook", scale=0.05)
        assert nodes == max(64, round(4039 * 0.05))
        assert edges > 0


class TestMemoization:
    """Per-process surrogate memo: deterministic loads generate once."""

    def test_integer_seed_loads_share_one_graph(self):
        first = load_dataset("facebook", scale=0.02, rng=0)
        second = load_dataset("facebook", scale=0.02, rng=0)
        assert second is first, "same (name, scale, seed) must memoize"

    def test_default_scale_and_explicit_scale_share_the_entry(self):
        spec = DATASETS["enron"]
        assert load_dataset("enron", scale=0.02) is load_dataset("enron", scale=0.02)
        assert load_dataset("enron") is load_dataset("enron", scale=spec.default_scale)

    def test_memo_keys_on_every_argument(self):
        base = load_dataset("facebook", scale=0.02, rng=0)
        assert load_dataset("facebook", scale=0.03, rng=0) is not base
        assert load_dataset("facebook", scale=0.02, rng=1) is not base
        assert load_dataset("enron", scale=0.02, rng=0) is not base

    def test_generator_rng_bypasses_memo(self):
        import numpy as np

        gen = np.random.default_rng(0)
        first = load_dataset("facebook", scale=0.02, rng=gen)
        second = load_dataset("facebook", scale=0.02, rng=gen)
        assert first is not second, "stateful generators must not memoize"

    def test_memo_is_bounded(self):
        from repro.graph.datasets import _MEMO_SIZE, _load_dataset_memo

        _load_dataset_memo.cache_clear()
        for seed in range(_MEMO_SIZE + 4):
            load_dataset("facebook", scale=0.02, rng=seed)
        assert _load_dataset_memo.cache_info().currsize <= _MEMO_SIZE
