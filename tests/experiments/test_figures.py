"""Tests for the figure-level facade, including the batched run_all."""

from repro.experiments import figures
from repro.experiments.config import ExperimentConfig

TINY = ExperimentConfig(trials=1, scale=0.02, seed=0, cache=False)


class TestRunAll:
    def test_matches_individual_drivers(self):
        batched = figures.run_all(TINY, names=("fig6", "fig12a"))
        assert list(batched) == ["fig6", "fig12a"]
        assert batched["fig6"].sweep().series == figures.fig6("facebook", TINY).series
        assert batched["fig12a"].sweep().series == figures.fig12a(TINY).series

    def test_dataset_override_retargets_every_scenario(self):
        batched = figures.run_all(TINY, dataset="enron", names=("fig6",))
        assert batched["fig6"].sweep().dataset == "enron"
        assert batched["fig6"].sweep().series == figures.fig6("enron", TINY).series

    def test_default_covers_every_figure_scenario(self):
        from repro.scenarios import get_scenario

        for name in figures.FIGURE_SCENARIOS:
            get_scenario(name)  # every default entry resolves in the catalog
