"""Tests for the on-disk result cache."""

import json

from repro.engine import cache as cache_module
from repro.engine.cache import CACHE_VERSION, NullCache, ResultCache
from tests.engine.test_tasks import make_task


class TestResultCache:
    def test_miss_then_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = make_task()
        assert cache.get(task) is None
        cache.put(task, 1.25)
        assert cache.get(task) == 1.25
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_distinct_tasks_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_task(), 1.0)
        cache.put(make_task(seed=999), 2.0)
        assert cache.get(make_task()) == 1.0
        assert cache.get(make_task(seed=999)) == 2.0

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = make_task()
        cache.put(task, 3.0)
        path = cache.path_for(task)
        entry = json.loads(path.read_text())
        entry["cache_version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(entry))
        assert cache.get(task) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = make_task()
        cache.put(task, 3.0)
        cache.path_for(task).write_text("{not json")
        assert cache.get(task) is None

    def test_identity_mismatch_is_a_miss(self, tmp_path):
        """A stale entry whose stored identity disagrees is never returned."""
        cache = ResultCache(tmp_path)
        task = make_task()
        cache.put(task, 3.0)
        path = cache.path_for(task)
        entry = json.loads(path.read_text())
        entry["task"]["epsilon"] = 99.0
        path.write_text(json.dumps(entry))
        assert cache.get(task) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_task(), 1.0)
        cache.put(make_task(seed=5), 2.0)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get(make_task()) is None

    def test_default_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache_module.CACHE_DIR_ENV, str(tmp_path / "custom"))
        assert ResultCache().root == tmp_path / "custom"

    def test_display_fields_share_entries(self, tmp_path):
        """Two tasks differing only in display coordinates hit the same entry."""
        cache = ResultCache(tmp_path)
        cache.put(make_task(figure="Fig6", trial=0), 4.0)
        assert cache.get(make_task(figure="Fig9", trial=3)) == 4.0


class TestNullCache:
    def test_never_stores(self):
        cache = NullCache()
        task = make_task()
        cache.put(task, 1.0)
        assert cache.get(task) is None
        assert cache.clear() == 0
