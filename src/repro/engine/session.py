"""The persistent execution session: one pool, one graph store, one cache.

Before this module, every ``run_tasks`` call was an island: it received one
graph, spun up (and tore down) its own process pool, and shipped the graph
to every worker by pickle.  A multi-panel scenario therefore paid pool
startup and graph serialisation once *per panel*, and panels serialised
against each other even at ``--jobs N``.

:class:`EngineSession` hoists all of that to session scope:

* a :class:`~repro.engine.graph_store.GraphStore` holds every registered
  graph/labelling, exported **once** into shared memory, attached zero-copy
  by workers;
* one :class:`~concurrent.futures.ProcessPoolExecutor` persists across
  :meth:`run` calls (created lazily on the first batch big enough to fan
  out);
* one cache — the sharded result store by default — fronts every batch.

Batches are heterogeneous: tasks from different figures, panels and
datasets execute in a single fan-out, resolved to their graphs by the
``graph_key``/``labels_key`` they carry.  Because tasks are self-seeded,
results stay bit-identical to per-panel serial execution — the session only
changes wall-clock time.

Usage::

    with EngineSession(jobs=8) as session:
        session.add_graph(facebook_graph)
        session.add_graph(enron_graph, labels=enron_labels)
        gains = session.run(tasks)            # any mix of graphs
        more = session.run(other_tasks)       # same pool, same segments
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.cache import NullCache
from repro.engine.executors import (
    CacheLike,
    ParallelExecutor,
    PoolManager,
    SerialExecutor,
    cache_for,
    run_batch,
)
from repro.engine.graph_store import GraphStore
from repro.engine.tasks import TrialTask
from repro.graph.adjacency import Graph
from repro.telemetry.core import TracerLike, current_tracer, set_tracer


class EngineSession:
    """Shared execution state for any number of task batches.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` executes in-process (no pool is ever
        created).  The pool, once created, persists until :meth:`close`.
    cache:
        Result cache fronting every batch; defaults to no caching.  Pass
        :class:`~repro.engine.result_store.ShardedResultStore` (or use
        :meth:`from_config` with ``config.cache=True``) for persistence.
    telemetry:
        A :class:`~repro.telemetry.core.Tracer` to install as the
        process-local tracer for the session's lifetime (restored on
        :meth:`close`).  None leaves the current tracer — usually the
        no-op :data:`~repro.telemetry.core.NULL_TRACER` — in place;
        ``REPRO_TRACE=1`` activates one without code changes either way.
    max_retries / task_timeout:
        Crash-retry rounds and stall deadline (seconds) handed to the
        parallel executor: a worker that dies (``BrokenProcessPool``) or a
        round that stops progressing gets the persistent pool replaced and
        only the undelivered chunks re-dispatched — the session stays
        usable for subsequent :meth:`run` calls either way.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[CacheLike] = None,
        telemetry: Optional[TracerLike] = None,
        max_retries: Optional[int] = None,
        task_timeout: Optional[float] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {jobs}")
        self.jobs = int(jobs)
        self.cache: CacheLike = cache if cache is not None else NullCache()
        self.graphs = GraphStore()
        self.max_retries = max_retries
        self.task_timeout = task_timeout
        self._pools = PoolManager(self.jobs)
        self._closed = False
        self._previous_tracer: Optional[TracerLike] = None
        if telemetry is not None:
            self._previous_tracer = set_tracer(telemetry)
        current_tracer().counter("session.create")

    @classmethod
    def from_config(cls, config, cache: Optional[CacheLike] = None) -> "EngineSession":
        """A session sized by ``config.jobs`` with ``config.cache`` semantics."""
        return cls(
            jobs=getattr(config, "jobs", 1),
            cache=cache if cache is not None else cache_for(config),
            max_retries=getattr(config, "max_retries", None),
            task_timeout=getattr(config, "task_timeout", None),
        )

    # ------------------------------------------------------------------
    # Graph registration
    # ------------------------------------------------------------------
    def add_graph(
        self, graph: Graph, labels: Optional[np.ndarray] = None
    ) -> Tuple[str, str]:
        """Register a graph (and optional labels); returns their task keys.

        Idempotent by content: re-registering a graph another scenario
        already added reuses its entry and shared-memory segment.
        """
        return self.graphs.add(graph, labels)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self, tasks: Sequence[TrialTask], cache: Optional[CacheLike] = None
    ) -> List[float]:
        """Gains of a (possibly multi-graph) batch, in input order.

        Cache hits short-circuit; misses fan out over the persistent pool
        (or run in-process for ``jobs=1`` / sub-threshold batches).  Every
        graph a task references must have been registered via
        :meth:`add_graph`.  ``cache`` overrides the session cache for this
        batch only (the golden harness replays with caching forced off).
        """
        self._check_open()
        cache = cache if cache is not None else self.cache
        with current_tracer().span("session.run", tasks=len(tasks), jobs=self.jobs):
            return run_batch(tasks, self.graphs, executor=self._executor(), cache=cache)

    def _executor(self):
        if self.jobs == 1:
            return SerialExecutor()
        # The pool is created by the factory only when a batch actually fans
        # out: empty, cache-warm and sub-threshold runs never fork a worker.
        # The reset hook lets the executor replace a pool whose workers died
        # mid-batch, so one crash never poisons later run() calls.
        return ParallelExecutor(
            jobs=self.jobs,
            pool_factory=self._ensure_pool,
            pool_reset=self._discard_pool,
            max_retries=self.max_retries,
            task_timeout=self.task_timeout,
        )

    @property
    def _pool(self) -> Optional[_ProcessPool]:
        """The live persistent pool, if one was ever created (tests peek)."""
        return self._pools._pool

    def _ensure_pool(self) -> _ProcessPool:
        return self._pools.acquire()

    def _discard_pool(self) -> None:
        self._pools.discard()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down, then unlink every shared segment.  Idempotent.

        The session cache's lifetime statistics (``ShardedResultStore.stats``:
        hits, misses, appends, migrations, shards loaded) are logged through
        telemetry as the ``session.close`` span's attributes instead of
        being dropped with the store.  A tracer installed via
        ``telemetry=...`` is restored to the previous one afterwards.
        """
        if self._closed:
            return
        self._closed = True
        try:
            stats_of = getattr(self.cache, "stats", None)
            attrs = dict(stats_of()) if callable(stats_of) else {}
            with current_tracer().span("session.close", **attrs):
                self._pools.shutdown()
                self.graphs.close()
        finally:
            if self._previous_tracer is not None:
                set_tracer(self._previous_tracer)
                self._previous_tracer = None

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("EngineSession is closed")

    def __enter__(self) -> "EngineSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass


@contextmanager
def session_scope(
    config, session: Optional[EngineSession] = None, cache: Optional[CacheLike] = None
) -> Iterator[Tuple[EngineSession, Optional[CacheLike]]]:
    """Yield ``(session, batch_cache)`` for one caller-facing run.

    A provided ``session`` is borrowed untouched — ``cache`` is handed back
    as a per-batch override for :meth:`EngineSession.run`.  Otherwise an
    ephemeral session is created from ``config`` with ``cache`` installed
    as its default (so the override slot comes back None) and closed when
    the block exits.  This is the single definition of the session
    acquisition dance every entry point (scenario runs, sweep runner)
    shares.
    """
    if session is not None:
        yield session, cache
        return
    session = EngineSession.from_config(config, cache=cache)
    try:
        yield session, None
    finally:
        session.close()
