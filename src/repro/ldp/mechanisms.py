"""Core local-perturbation mechanisms.

Two primitives cover everything the graph protocols need:

* **Symmetric randomized response** on bits (Warner's mechanism).  Each bit is
  reported truthfully with probability ``p = e^eps / (1 + e^eps)`` and flipped
  otherwise, which satisfies ``eps``-edge-LDP for adjacency bit vectors.
* **The Laplace mechanism** on the node degree (sensitivity 1 under edge LDP:
  adding or removing one edge changes a degree by exactly 1).

Plus the server-side *calibration* that converts biased randomized-response
counts back into unbiased estimates.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive

ArrayLike = Union[float, np.ndarray]


def rr_keep_probability(epsilon: float) -> float:
    """Probability ``p`` of reporting a bit truthfully under eps-LDP RR.

    ``p = e^eps / (1 + e^eps)``; flipping happens with probability ``1 - p``.
    This is the ``p`` that appears throughout the paper's estimator formulas.

    >>> round(rr_keep_probability(0.0), 3)
    0.5
    """
    check_positive(epsilon + 1.0, "epsilon + 1")  # allow epsilon == 0
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    return math.exp(epsilon) / (1.0 + math.exp(epsilon))


def perturb_bits(bits: np.ndarray, epsilon: float, rng: RngLike = None) -> np.ndarray:
    """Apply symmetric randomized response to a 0/1 array.

    Every bit is flipped independently with probability ``1 - p``.  Satisfies
    eps-edge-LDP when ``bits`` is an adjacency bit vector (neighbouring
    vectors differ in one bit, and the output-likelihood ratio for any single
    bit is at most ``p / (1 - p) = e^eps``).
    """
    generator = ensure_rng(rng)
    bits = np.asarray(bits)
    if not np.isin(bits, (0, 1)).all():
        raise ValueError("bits must contain only 0 and 1")
    keep = rr_keep_probability(epsilon)
    flips = generator.random(bits.shape) >= keep
    return np.where(flips, 1 - bits, bits).astype(np.uint8)


def laplace_noise(
    scale: float, size: int | tuple | None = None, rng: RngLike = None
) -> np.ndarray:
    """Draw Laplace(0, scale) noise."""
    check_positive(scale, "scale")
    return ensure_rng(rng).laplace(loc=0.0, scale=scale, size=size)


def perturb_degree(
    degrees: ArrayLike, epsilon: float, rng: RngLike = None, sensitivity: float = 1.0
) -> np.ndarray:
    """Laplace mechanism on node degrees (edge-LDP sensitivity 1).

    Returns real-valued noisy degrees; the protocols keep them unrounded so
    that calibration stays unbiased.
    """
    check_positive(epsilon, "epsilon")
    check_positive(sensitivity, "sensitivity")
    degrees = np.atleast_1d(np.asarray(degrees, dtype=np.float64))
    noise = laplace_noise(sensitivity / epsilon, size=degrees.shape, rng=rng)
    return degrees + noise


def degree_noise_scale(epsilon: float, sensitivity: float = 1.0) -> float:
    """Laplace scale ``b = sensitivity / epsilon`` used for degree reports."""
    check_positive(epsilon, "epsilon")
    return sensitivity / epsilon


def calibrate_bit_counts(observed_ones: ArrayLike, total_bits: ArrayLike, epsilon: float) -> np.ndarray:
    """Unbiased estimate of true 1-counts from randomized-response outputs.

    If ``x`` of ``T`` reported bits are 1 and the true count is ``k``, then
    ``E[x] = k p + (T - k)(1 - p)``, so the calibrated estimate is
    ``k_hat = (x - T (1 - p)) / (2p - 1)``.

    This is the server-side counterpart of :func:`perturb_bits` and the
    ``R(.)``-style correction for degrees derived from bit vectors.
    """
    keep = rr_keep_probability(epsilon)
    if keep == 0.5:
        raise ValueError("epsilon=0 leaves no signal to calibrate (2p - 1 = 0)")
    observed_ones = np.asarray(observed_ones, dtype=np.float64)
    total_bits = np.asarray(total_bits, dtype=np.float64)
    return (observed_ones - total_bits * (1.0 - keep)) / (2.0 * keep - 1.0)
