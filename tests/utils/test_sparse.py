"""Tests for repro.utils.sparse, including hypothesis round-trip properties."""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import sparse
from repro.utils.sparse import (
    decode_pairs,
    encode_pairs,
    merge_sorted_disjoint,
    pair_count,
    sample_pairs_excluding,
    sorted_unique,
)


class TestPairCount:
    @pytest.mark.parametrize("n,expected", [(0, 0), (1, 0), (2, 1), (4, 6), (100, 4950)])
    def test_values(self, n, expected):
        assert pair_count(n) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            pair_count(-1)


class TestEncodeDecode:
    def test_known_codes(self):
        # For n=4 the upper-triangle row-major order is
        # (0,1)=0 (0,2)=1 (0,3)=2 (1,2)=3 (1,3)=4 (2,3)=5.
        rows = np.array([0, 0, 0, 1, 1, 2])
        cols = np.array([1, 2, 3, 2, 3, 3])
        codes = encode_pairs(rows, cols, 4)
        assert codes.tolist() == [0, 1, 2, 3, 4, 5]

    def test_orientation_invariant(self):
        a = encode_pairs(np.array([2]), np.array([5]), 10)
        b = encode_pairs(np.array([5]), np.array([2]), 10)
        assert a[0] == b[0]

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError, match="self-loops"):
            encode_pairs(np.array([1]), np.array([1]), 4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            encode_pairs(np.array([0]), np.array([4]), 4)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="same shape"):
            encode_pairs(np.array([0, 1]), np.array([1]), 4)

    def test_decode_rejects_bad_codes(self):
        with pytest.raises(ValueError, match="out of range"):
            decode_pairs(np.array([6]), 4)

    @given(
        n=st.integers(min_value=2, max_value=2000),
        data=st.data(),
    )
    @settings(max_examples=150, deadline=None)
    def test_round_trip_property(self, n, data):
        total = pair_count(n)
        codes = data.draw(
            st.lists(st.integers(min_value=0, max_value=total - 1), min_size=1, max_size=50)
        )
        codes = np.array(codes, dtype=np.int64)
        rows, cols = decode_pairs(codes, n)
        assert np.all(rows < cols)
        assert np.all(rows >= 0) and np.all(cols < n)
        recoded = encode_pairs(rows, cols, n)
        assert np.array_equal(recoded, codes)

    def test_full_round_trip_small_n(self):
        for n in range(2, 30):
            codes = np.arange(pair_count(n), dtype=np.int64)
            rows, cols = decode_pairs(codes, n)
            assert np.array_equal(encode_pairs(rows, cols, n), codes)


class TestSamplePairsExcluding:
    def test_avoids_forbidden(self):
        rng = np.random.default_rng(0)
        forbidden = np.array([0, 1, 2, 3], dtype=np.int64)
        sampled = sample_pairs_excluding(10, 20, forbidden, rng)
        assert sampled.size == 20
        assert np.intersect1d(sampled, forbidden).size == 0

    def test_no_duplicates(self):
        rng = np.random.default_rng(1)
        sampled = sample_pairs_excluding(50, 500, np.empty(0, dtype=np.int64), rng)
        assert np.unique(sampled).size == 500

    def test_exhaustive_sampling(self):
        # Ask for every available pair; must succeed exactly.
        rng = np.random.default_rng(2)
        forbidden = np.array([0], dtype=np.int64)
        total = pair_count(6)
        sampled = sample_pairs_excluding(6, total - 1, forbidden, rng)
        assert np.unique(sampled).size == total - 1
        assert 0 not in sampled

    def test_too_many_requested(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError, match="cannot sample"):
            sample_pairs_excluding(4, 7, np.empty(0, dtype=np.int64), rng)

    def test_zero_count(self):
        rng = np.random.default_rng(4)
        out = sample_pairs_excluding(10, 0, np.empty(0, dtype=np.int64), rng)
        assert out.size == 0

    def test_uniformity_rough(self):
        # Each pair of K(5)=10 should appear ~equally often over many draws.
        rng = np.random.default_rng(5)
        counts = np.zeros(10)
        for _ in range(2000):
            picked = sample_pairs_excluding(5, 3, np.empty(0, dtype=np.int64), rng)
            counts[picked] += 1
        expected = 2000 * 3 / 10
        assert np.all(np.abs(counts - expected) < expected * 0.25)

    #: (n, count, forbidden, seed) -> sha256[:16] of the output bytes, generated
    #: from the pre-optimization implementation (seen-array re-sort per round).
    #: The optimized sampler must stay *draw-for-draw identical*: its rng
    #: consumption determines perturb_graph outputs and therefore the validity
    #: of every engine cache entry ever written.
    PINNED = [
        (10, 20, list(range(4)), 0, "3be68f47fc5cf0d1"),
        (50, 500, list(range(0, 100, 3)), 1, "b71f87315168f3c2"),
        # Dense-flip regime: 45% of all pairs requested (many rounds).
        (200, 9000, [], 2, "971d0a766355b4a9"),
        # Dense flips against a dense forbidden set.
        (120, 5000, list(range(0, 2000, 2)), 3, "a9d95c7acdc0f146"),
    ]

    @pytest.mark.parametrize("n,count,forbidden,seed,digest", PINNED)
    def test_output_pinned_to_legacy_implementation(self, n, count, forbidden, seed, digest):
        rng = np.random.default_rng(seed)
        out = sample_pairs_excluding(n, count, np.array(forbidden, dtype=np.int64), rng)
        assert hashlib.sha256(out.tobytes()).hexdigest()[:16] == digest

    def test_adaptive_oversample_correct(self):
        rng = np.random.default_rng(6)
        forbidden = np.arange(0, 4000, 2, dtype=np.int64)
        out = sample_pairs_excluding(200, 9000, forbidden, rng, oversample=1.1)
        assert out.size == 9000
        assert np.unique(out).size == 9000
        assert np.intersect1d(out, forbidden).size == 0

    def test_adaptive_oversample_converges_in_few_rounds(self):
        class CountingRng:
            """Duck-typed generator recording how many batches were drawn."""

            def __init__(self, seed):
                self.rng = np.random.default_rng(seed)
                self.integer_calls = 0

            def integers(self, *args, **kwargs):
                self.integer_calls += 1
                return self.rng.integers(*args, **kwargs)

            def choice(self, *args, **kwargs):
                return self.rng.choice(*args, **kwargs)

        # Half of all pairs forbidden, a third of the remainder requested: the
        # flat 1.1 factor needs a geometric tail of rounds, the
        # density-proportional batch should land in at most a few.
        n = 300
        total = pair_count(n)
        forbidden = np.arange(0, total, 2, dtype=np.int64)
        flat = CountingRng(7)
        sample_pairs_excluding(n, total // 6, forbidden, flat)
        adaptive = CountingRng(7)
        out = sample_pairs_excluding(n, total // 6, forbidden, adaptive, oversample=1.1)
        assert out.size == total // 6
        assert adaptive.integer_calls <= 3
        assert adaptive.integer_calls < flat.integer_calls


class TestMemberTableDispatch:
    def test_both_rejection_paths_sample_identically(self):
        """The bool-table path and the binary-search fallback must reject the
        same draws, leaving the rng stream — and the output — identical."""
        cases = [
            (60, 300, np.arange(0, 800, 3, dtype=np.int64), 0),
            (200, 9000, np.empty(0, dtype=np.int64), 2),
            (120, 5000, np.arange(0, 2000, 2, dtype=np.int64), 3),
        ]
        for n, count, forbidden, seed in cases:
            with_table = sample_pairs_excluding(
                n, count, forbidden, np.random.default_rng(seed)
            )
            original = sparse._MEMBER_TABLE_MAX_CODES
            sparse._MEMBER_TABLE_MAX_CODES = 0
            try:
                without_table = sample_pairs_excluding(
                    n, count, forbidden, np.random.default_rng(seed)
                )
            finally:
                sparse._MEMBER_TABLE_MAX_CODES = original
            assert np.array_equal(with_table, without_table)


class TestSortedUnique:
    def test_matches_np_unique(self):
        rng = np.random.default_rng(0)
        for size in (1, 2, 17, 1000):
            values = rng.integers(0, max(1, size // 2), size=size, dtype=np.int64)
            assert np.array_equal(sorted_unique(values.copy()), np.unique(values))

    def test_empty(self):
        assert sorted_unique(np.empty(0, dtype=np.int64)).size == 0

    def test_already_unique_sorted(self):
        values = np.array([1, 3, 9], dtype=np.int64)
        assert np.array_equal(sorted_unique(values.copy()), values)

    @given(data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_property(self, data):
        values = np.array(
            data.draw(st.lists(st.integers(min_value=-100, max_value=100))),
            dtype=np.int64,
        )
        assert np.array_equal(sorted_unique(values.copy()), np.unique(values))


class TestMergeSortedDisjoint:
    def test_basic(self):
        merged = merge_sorted_disjoint(
            np.array([1, 4, 9], dtype=np.int64), np.array([2, 3, 10], dtype=np.int64)
        )
        assert merged.tolist() == [1, 2, 3, 4, 9, 10]

    def test_empty_sides(self):
        a = np.array([5, 7], dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        assert merge_sorted_disjoint(a, empty).tolist() == [5, 7]
        assert merge_sorted_disjoint(empty, a).tolist() == [5, 7]
        assert merge_sorted_disjoint(empty, empty).size == 0

    @given(data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_matches_union1d_property(self, data):
        pool = data.draw(st.lists(st.integers(min_value=-500, max_value=500), unique=True))
        split = data.draw(st.integers(min_value=0, max_value=len(pool)))
        a = np.sort(np.array(pool[:split], dtype=np.int64))
        b = np.sort(np.array(pool[split:], dtype=np.int64))
        assert np.array_equal(merge_sorted_disjoint(a, b), np.union1d(a, b))
