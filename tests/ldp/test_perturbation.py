"""Tests for the sparse graph randomized-response simulator."""

import numpy as np
import pytest

from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi_graph, powerlaw_cluster_graph
from repro.ldp.mechanisms import rr_keep_probability
from repro.ldp.perturbation import (
    attacker_connection_budget,
    expected_perturbed_average_degree,
    expected_perturbed_degree,
    perturb_graph,
    perturb_graph_batch,
)
from repro.utils.sparse import pair_count


class TestPerturbGraph:
    def test_node_count_preserved(self):
        g = powerlaw_cluster_graph(100, 3, 0.5, rng=0)
        assert perturb_graph(g, 2.0, rng=0).num_nodes == 100

    def test_deterministic(self):
        g = powerlaw_cluster_graph(100, 3, 0.5, rng=0)
        assert perturb_graph(g, 2.0, rng=5) == perturb_graph(g, 2.0, rng=5)

    def test_high_epsilon_identity_like(self):
        g = powerlaw_cluster_graph(200, 3, 0.5, rng=0)
        perturbed = perturb_graph(g, 40.0, rng=0)
        assert perturbed == g

    def test_edge_survival_rate(self):
        g = erdos_renyi_graph(300, 0.2, rng=0)
        epsilon = 2.0
        keep = rr_keep_probability(epsilon)
        rng = np.random.default_rng(1)
        survival_rates = []
        for _ in range(10):
            perturbed = perturb_graph(g, epsilon, rng=rng)
            kept = np.intersect1d(g.edge_codes, perturbed.edge_codes).size
            survival_rates.append(kept / g.num_edges)
        assert np.mean(survival_rates) == pytest.approx(keep, rel=0.02)

    def test_flip_rate_on_non_edges(self):
        g = erdos_renyi_graph(300, 0.2, rng=0)
        epsilon = 2.0
        keep = rr_keep_probability(epsilon)
        non_edges = pair_count(300) - g.num_edges
        rng = np.random.default_rng(2)
        flip_counts = []
        for _ in range(10):
            perturbed = perturb_graph(g, epsilon, rng=rng)
            new_edges = np.setdiff1d(perturbed.edge_codes, g.edge_codes).size
            flip_counts.append(new_edges)
        assert np.mean(flip_counts) == pytest.approx(non_edges * (1 - keep), rel=0.05)

    def test_expected_degree_matches_simulation(self):
        g = erdos_renyi_graph(400, 0.1, rng=0)
        epsilon = 1.0
        rng = np.random.default_rng(3)
        simulated = np.mean(
            [perturb_graph(g, epsilon, rng=rng).degrees().mean() for _ in range(5)]
        )
        predicted = expected_perturbed_average_degree(g, epsilon)
        assert simulated == pytest.approx(predicted, rel=0.02)

    def test_empty_graph(self):
        g = Graph(50)
        perturbed = perturb_graph(g, 1.0, rng=0)
        # Every edge present is a flipped non-edge.
        expected = pair_count(50) * (1 - rr_keep_probability(1.0))
        assert perturbed.num_edges == pytest.approx(expected, rel=0.5)

    def test_single_node(self):
        assert perturb_graph(Graph(1), 1.0, rng=0).num_edges == 0


class TestPerturbGraphBatch:
    """The batched kernel must be bit-identical, plane for plane, to the
    scalar path: trial ``t`` of ``perturb_graph_batch(graph, eps, rngs)``
    and ``perturb_graph(graph, eps, rng=rngs[t])`` consume the same RNG
    stream and must produce the same edge codes.  The engine's batched
    dispatch relies on this to reuse the scalar path's cache entries."""

    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0, 4.0, 40.0])
    def test_planes_bit_identical_to_scalar(self, epsilon):
        graph = powerlaw_cluster_graph(120, 4, 0.5, rng=0)
        seeds = [0, 1, 7, 12345]
        batched = perturb_graph_batch(
            graph, epsilon, [np.random.default_rng(seed) for seed in seeds]
        )
        assert len(batched) == len(seeds)
        for seed, plane in zip(seeds, batched):
            scalar = perturb_graph(graph, epsilon, rng=np.random.default_rng(seed))
            assert np.array_equal(plane.edge_codes, scalar.edge_codes)
            assert plane.num_nodes == scalar.num_nodes

    def test_dense_graph_planes_identical(self):
        graph = erdos_renyi_graph(150, 0.4, rng=3)
        batched = perturb_graph_batch(
            graph, 1.0, [np.random.default_rng(seed) for seed in (2, 9)]
        )
        for seed, plane in zip((2, 9), batched):
            scalar = perturb_graph(graph, 1.0, rng=np.random.default_rng(seed))
            assert np.array_equal(plane.edge_codes, scalar.edge_codes)

    def test_empty_and_tiny_graphs(self):
        for graph in (Graph(0), Graph(1), Graph(2), Graph(2, [(0, 1)])):
            batched = perturb_graph_batch(
                graph, 1.0, [np.random.default_rng(seed) for seed in (0, 1)]
            )
            for seed, plane in zip((0, 1), batched):
                scalar = perturb_graph(graph, 1.0, rng=np.random.default_rng(seed))
                assert np.array_equal(plane.edge_codes, scalar.edge_codes)

    def test_single_trial(self):
        graph = powerlaw_cluster_graph(80, 3, 0.5, rng=1)
        (plane,) = perturb_graph_batch(graph, 2.0, [np.random.default_rng(5)])
        scalar = perturb_graph(graph, 2.0, rng=np.random.default_rng(5))
        assert np.array_equal(plane.edge_codes, scalar.edge_codes)

    def test_int_seeds_accepted(self):
        graph = powerlaw_cluster_graph(60, 3, 0.5, rng=2)
        batched = perturb_graph_batch(graph, 2.0, [4, 11])
        for seed, plane in zip((4, 11), batched):
            scalar = perturb_graph(graph, 2.0, rng=seed)
            assert np.array_equal(plane.edge_codes, scalar.edge_codes)

    def test_no_rngs_returns_empty(self):
        assert perturb_graph_batch(Graph(5), 1.0, []) == []


class TestExpectedDegrees:
    def test_formula(self):
        epsilon = 2.0
        p = rr_keep_probability(epsilon)
        value = expected_perturbed_degree(10.0, 101, epsilon)
        assert value == pytest.approx(10 * p + 90 * (1 - p))

    def test_epsilon_zero(self):
        # At eps=0 everything is random: expected degree = (N-1)/2.
        assert expected_perturbed_degree(5.0, 101, 0.0) == pytest.approx(50.0)

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            expected_perturbed_degree(-1.0, 10, 1.0)

    def test_average_empty_graph(self):
        assert expected_perturbed_average_degree(Graph(0), 1.0) == 0.0

    def test_budget_at_least_one(self):
        g = Graph(10, [(0, 1)])
        assert attacker_connection_budget(g, 50.0) >= 1

    def test_budget_floor_of_expectation(self):
        g = erdos_renyi_graph(200, 0.3, rng=0)
        expected = expected_perturbed_average_degree(g, 3.0)
        assert attacker_connection_budget(g, 3.0) == int(expected)

    def test_budget_decreases_with_epsilon_sparse_graph(self):
        """For sparse graphs, higher eps -> fewer flipped edges -> smaller budget."""
        g = powerlaw_cluster_graph(1000, 5, 0.5, rng=0)
        budgets = [attacker_connection_budget(g, eps) for eps in (1, 2, 4, 8)]
        assert budgets == sorted(budgets, reverse=True)
        assert budgets[0] > budgets[-1]
