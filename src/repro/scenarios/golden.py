"""Golden-result regression store for scenarios.

``record_golden`` runs a scenario at a tiny, fixed configuration and writes
its aggregate outputs — per-point means and standard errors, plus a hash of
the compiled task batch — to a small JSON fixture.  ``check_golden`` replays
the scenario and compares against the fixture within the spec's recorded
tolerance.  Together they turn the entire attack/defense/protocol stack into
one end-to-end regression suite: any change that silently alters numeric
outputs (a reordered RNG draw, a broken estimator, a drifted seed key)
fails ``pytest tests/scenarios`` instead of shipping.

Two layers of protection:

* the **batch hash** (SHA-256 over the sorted content hashes of every
  compiled task) pins the task *identities* — seeds, budgets, defense
  arguments — so a seed-derivation regression is caught even if the means
  happen to survive it;
* the **means/stderrs** pin the numeric pipeline itself, within
  ``golden_rtol``/``golden_atol`` (defaults are effectively bit-identical,
  with headroom only for cross-platform float noise).

Fixtures live in ``tests/golden/`` (override with ``REPRO_GOLDEN_DIR``) and
are (re)written by ``python -m repro scenario record``.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from pathlib import Path
from typing import Dict, List, Optional

from repro.engine.cache import NullCache
from repro.experiments.config import ExperimentConfig
from repro.scenarios.run import (
    PreparedScenario,
    ScenarioResult,
    prepare_scenario,
    run_scenario,
)
from repro.scenarios.spec import ScenarioSpec

#: Environment variable overriding the default fixture directory.
GOLDEN_DIR_ENV = "REPRO_GOLDEN_DIR"

#: The fixed recording configuration: tiny surrogates, two trials — small
#: enough that replaying every registered scenario stays CI-friendly.
GOLDEN_CONFIG = ExperimentConfig(trials=2, scale=0.02, seed=0, cache=False)

#: Fixture format version; bump when the payload layout changes.
GOLDEN_FORMAT = 1


def default_golden_dir() -> Path:
    """``tests/golden`` in the repository checkout (or $REPRO_GOLDEN_DIR)."""
    override = os.environ.get(GOLDEN_DIR_ENV)
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def golden_path(spec_name: str, directory: Optional[Path] = None) -> Path:
    """Where one scenario's fixture lives (slashes become double underscores)."""
    directory = directory if directory is not None else default_golden_dir()
    return Path(directory) / f"{spec_name.replace('/', '__')}.json"


def batch_hash(spec: ScenarioSpec, config: ExperimentConfig,
               prepared: Optional[PreparedScenario] = None) -> str:
    """Order-independent SHA-256 over the compiled batch's task identities.

    ``prepared`` (from :func:`~repro.scenarios.run.prepare_scenario`) avoids
    re-loading the dataset and re-compiling the batch when the caller also
    runs the scenario.
    """
    if prepared is None:
        prepared = prepare_scenario(spec, config)
    _, _, tasks = prepared
    digest = hashlib.sha256()
    for task_hash in sorted(task.content_hash() for task in tasks):
        digest.update(task_hash.encode("ascii"))
    return digest.hexdigest()


def _result_payload(result: ScenarioResult) -> dict:
    if result.table is not None:
        return {"table": [list(row) for row in result.table]}
    panels = {}
    for key, sweep in result.panels.items():
        panels[key] = {
            "figure": sweep.figure,
            "values": [float(v) for v in sweep.values],
            "series": {
                name: {
                    "mean": sweep.series[name],
                    "stderr": sweep.stderr.get(name, []),
                }
                for name in sweep.series
            },
        }
    return {"panels": panels}


def record_golden(
    spec: ScenarioSpec,
    config: ExperimentConfig = GOLDEN_CONFIG,
    directory: Optional[Path] = None,
) -> Path:
    """Run ``spec`` at the golden configuration and write its fixture."""
    prepared = prepare_scenario(spec, config) if spec.kind == "sweep" else None
    result = run_scenario(spec, config, cache=NullCache(), prepared=prepared)
    payload = {
        "format": GOLDEN_FORMAT,
        "scenario": spec.name,
        "dataset": spec.dataset,
        "kind": spec.kind,
        "config": {
            "trials": config.trials,
            "scale": config.scale,
            "seed": config.seed,
            "epsilon": config.epsilon,
            "beta": config.beta,
            "gamma": config.gamma,
        },
        "rtol": spec.golden_rtol,
        "atol": spec.golden_atol,
    }
    if spec.kind == "sweep":
        payload["batch_hash"] = batch_hash(spec, config, prepared=prepared)
    payload.update(_result_payload(result))
    path = golden_path(spec.name, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_golden(spec_name: str, directory: Optional[Path] = None) -> dict:
    """The recorded fixture of one scenario; raises FileNotFoundError if absent."""
    with open(golden_path(spec_name, directory), "r", encoding="utf-8") as handle:
        return json.load(handle)


def golden_config(golden: dict) -> ExperimentConfig:
    """The exact configuration a fixture was recorded under."""
    knobs = golden["config"]
    return ExperimentConfig(
        trials=knobs["trials"], scale=knobs["scale"], seed=knobs["seed"],
        epsilon=knobs["epsilon"], beta=knobs["beta"], gamma=knobs["gamma"],
        cache=False,
    )


def _close(actual: float, expected: float, rtol: float, atol: float) -> bool:
    """Tolerance comparison with explicit non-finite semantics.

    ``math.isclose`` is NaN-poisoned (``NaN != NaN``) and would report an
    inf-vs-inf pair as a confusing numeric diff; here two NaNs (or two
    same-signed infinities) compare equal — a fixture recorded from a buggy
    estimator should keep matching itself — while a finite/non-finite pair
    is always a mismatch.
    """
    actual, expected = float(actual), float(expected)
    if math.isnan(actual) or math.isnan(expected):
        return math.isnan(actual) and math.isnan(expected)
    if math.isinf(actual) or math.isinf(expected):
        return actual == expected
    return math.isclose(actual, expected, rel_tol=rtol, abs_tol=atol)


def _diff_message(key: str, name: str, kind: str, index: int,
                  value, want: float, have: float) -> str:
    """One mismatch line; non-finite values are called out as such."""
    if not (math.isfinite(float(want)) and math.isfinite(float(have))):
        return (
            f"{key}/{name}: {kind}[{index}] (value={value!r}) "
            f"non-finite value: {want!r} -> {have!r}"
        )
    return (
        f"{key}/{name}: {kind}[{index}] (value={value!r}) {want!r} -> {have!r}"
    )


def compare_golden(golden: dict, result: ScenarioResult, spec: ScenarioSpec) -> List[str]:
    """Mismatches between a replayed result and its fixture (empty == pass)."""
    rtol = float(golden.get("rtol", spec.golden_rtol))
    atol = float(golden.get("atol", spec.golden_atol))
    problems: List[str] = []

    if result.table is not None:
        expected_rows = [tuple(row) for row in golden.get("table", [])]
        actual_rows = [tuple(row) for row in result.table]
        if expected_rows != actual_rows:
            problems.append(f"table rows changed: {expected_rows} -> {actual_rows}")
        return problems

    expected_panels: Dict[str, dict] = golden.get("panels", {})
    if sorted(expected_panels) != sorted(result.panels):
        problems.append(
            f"panel set changed: {sorted(expected_panels)} -> {sorted(result.panels)}"
        )
        return problems
    for key, expected in expected_panels.items():
        sweep = result.panels[key]
        if [float(v) for v in sweep.values] != expected["values"]:
            problems.append(f"{key}: value grid changed")
            continue
        if sorted(expected["series"]) != sorted(sweep.series):
            problems.append(
                f"{key}: series set changed: "
                f"{sorted(expected['series'])} -> {sorted(sweep.series)}"
            )
            continue
        for name, curves in expected["series"].items():
            for kind, actual_curve in (("mean", sweep.series[name]), ("stderr", sweep.stderr.get(name, []))):
                expected_curve = curves[kind]
                if len(expected_curve) != len(actual_curve):
                    problems.append(f"{key}/{name}: {kind} length changed")
                    continue
                for index, (have, want) in enumerate(zip(actual_curve, expected_curve)):
                    if not _close(have, want, rtol, atol):
                        problems.append(
                            _diff_message(
                                key, name, kind, index,
                                sweep.values[index], want, have,
                            )
                        )
    return problems


def check_golden(
    spec: ScenarioSpec,
    directory: Optional[Path] = None,
) -> List[str]:
    """Replay ``spec`` against its fixture; returns mismatch descriptions.

    The replay runs at the fixture's recorded configuration with caching
    disabled, so a stale result cache can never mask a regression.
    """
    golden = load_golden(spec.name, directory)
    config = golden_config(golden)
    problems: List[str] = []
    prepared = prepare_scenario(spec, config) if spec.kind == "sweep" else None
    if spec.kind == "sweep":
        recorded_hash = golden.get("batch_hash", "")
        current_hash = batch_hash(spec, config, prepared=prepared)
        if recorded_hash != current_hash:
            problems.append(
                "compiled task batch changed (seed keys, grids or component "
                f"names): {recorded_hash} -> {current_hash}"
            )
    result = run_scenario(spec, config, cache=NullCache(), prepared=prepared)
    problems.extend(compare_golden(golden, result, spec))
    return problems
