"""Trial-stacked bit-plane adjacency tensor for cross-trial batched metrics.

Every trial of one figure point perturbs the *same* graph at the *same*
epsilon with an independent RNG stream; the per-trial scalar path then packs
and sweeps each perturbed graph alone, paying the gather/AND temporaries and
the Python-level node loop once per trial.  :class:`BitTensor` stacks all
trials' packed adjacency matrices into one ``trials x n x words`` uint64
array so that

* packing runs as a single split-bincount accumulation over every trial's
  edges at once (:func:`repro.graph.bitmatrix.accumulate_bits`);
* degrees are one popcount reduction over the whole stack;
* per-node triangle counts run as one blockwise row-AND/popcount sweep whose
  broadcast temporaries amortize across the trial axis (optionally served by
  the numba kernel behind ``REPRO_KERNELS`` — see :mod:`repro.graph.native`);
* intra-community edge counts mask all planes per community in one pass;
* attack-override row patches apply to any subset of planes in one
  accumulate/toggle pass (:meth:`with_edits`).

Every quantity is an exact integer equal to what the per-trial
:class:`~repro.graph.bitmatrix.BitMatrix` computes plane by plane — the
batched path is a pure reordering of the same word operations, so engine
results stay bit-identical whichever kernel serves them.  :meth:`plane`
exposes single trials as zero-copy ``BitMatrix`` views, which downstream
incremental estimators adopt as their cached packed matrix.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.graph import native
from repro.graph.bitmatrix import (
    _CHUNK_WORDS,
    BitMatrix,
    _gather_triangles,
    _row_popcounts,
    accumulate_bits,
    bit_index_arrays,
)

#: One plane's worth of edits: ``(add_rows, add_cols, drop_rows, drop_cols)``.
PlaneEdits = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


class BitTensor:
    """A stack of symmetric packed adjacency matrices, one plane per trial.

    Bit ``j`` of row ``i`` of plane ``t`` (word ``j >> 6``, position
    ``j & 63``) is 1 iff trial ``t``'s graph has the undirected edge
    ``{i, j}``.  Diagonals are always 0.

    >>> from repro.graph.adjacency import Graph
    >>> bt = BitTensor.from_graphs(
    ...     [Graph(4, [(0, 1), (1, 2), (2, 0)]), Graph(4, [(0, 3)])]
    ... )
    >>> bt.degrees().tolist()
    [[2, 2, 2, 0], [1, 0, 0, 1]]
    >>> bt.triangles_per_node().tolist()
    [[1, 1, 1, 0], [0, 0, 0, 0]]
    """

    __slots__ = ("num_trials", "num_nodes", "num_words", "planes", "_edges")

    def __init__(
        self,
        num_nodes: int,
        planes: np.ndarray,
        edges: Optional[Sequence[Tuple[np.ndarray, np.ndarray]]] = None,
    ):
        self.num_nodes = int(num_nodes)
        self.num_words = (self.num_nodes + 63) >> 6
        if planes.ndim != 3 or planes.shape[1:] != (self.num_nodes, self.num_words):
            raise ValueError(
                f"packed planes have shape {planes.shape}, expected "
                f"(trials, {self.num_nodes}, {self.num_words})"
            )
        self.num_trials = int(planes.shape[0])
        self.planes = planes
        if edges is not None and len(edges) != self.num_trials:
            raise ValueError(
                f"got {len(edges)} edge lists for {self.num_trials} planes"
            )
        # Per-trial decoded (rows, cols), when the constructor already holds
        # them (from_graphs) — saves re-extracting for the triangle sweep.
        self._edges = list(edges) if edges is not None else None

    @classmethod
    def from_graphs(cls, graphs: Iterable) -> "BitTensor":
        """Pack many same-order graphs in one accumulation pass."""
        graphs = list(graphs)
        if not graphs:
            raise ValueError("BitTensor needs at least one graph")
        n = graphs[0].num_nodes
        for graph in graphs:
            if graph.num_nodes != n:
                raise ValueError(
                    f"all graphs must share one node count; got {graph.num_nodes} != {n}"
                )
        words = (n + 63) >> 6
        trials = len(graphs)
        plane_words = n * words
        positions = []
        bits = []
        edges = []
        for trial, graph in enumerate(graphs):
            rows, cols = graph.edge_arrays()
            edges.append((np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64)))
            if rows.size == 0:
                continue
            sym_rows = np.concatenate([rows, cols])
            sym_cols = np.concatenate([cols, rows])
            positions.append(trial * plane_words + sym_rows * words + (sym_cols >> 6))
            bits.append(sym_cols & 63)
        if positions:
            flat = accumulate_bits(
                np.concatenate(positions), np.concatenate(bits), trials * plane_words
            )
        else:
            flat = np.zeros(trials * plane_words, dtype=np.uint64)
        return cls(n, flat.reshape(trials, n, words), edges=edges)

    def plane(self, trial: int) -> BitMatrix:
        """Trial ``trial``'s adjacency as a zero-copy :class:`BitMatrix` view.

        Mutating helpers on the view (``with_edits``) copy before writing,
        so handing planes to per-trial estimators never aliases trials into
        each other.
        """
        return BitMatrix(self.num_nodes, self.planes[trial])

    def row_range(self, start: int, stop: int) -> np.ndarray:
        """Zero-copy ``(trials, stop - start, words)`` packed row-block view.

        The trial-stacked counterpart of :meth:`BitMatrix.row_range`: a
        block of every trial's per-user report rows, for shipping user
        ranges to workers without slicing plane by plane.  Callers size
        ``stop - start`` with :func:`repro.graph.streaming.rows_per_block`
        (divided by ``num_trials``) to honour ``REPRO_DENSE_MAX_BYTES``.
        """
        if not 0 <= start <= stop <= self.num_nodes:
            raise ValueError(
                f"row range [{start}, {stop}) out of [0, {self.num_nodes}]"
            )
        return self.planes[:, start:stop, :]

    # ------------------------------------------------------------------
    # Exact integer counts, batched over the trial axis
    # ------------------------------------------------------------------
    def degrees(self) -> np.ndarray:
        """``(trials, n)`` node degrees — one popcount reduction."""
        return _row_popcounts(self.planes)

    def trial_edges(self, trial: int) -> Tuple[np.ndarray, np.ndarray]:
        """Trial ``trial``'s edges as ``(rows, cols)``, ``rows < cols``.

        Served from the arrays the constructor captured when available,
        otherwise re-extracted from the plane's packed bits.
        """
        if self._edges is not None:
            return self._edges[trial]
        return self.plane(trial).edge_endpoints()

    def triangles_per_node(self) -> np.ndarray:
        """``(trials, n)`` per-node incident-triangle counts.

        Exactly :meth:`BitMatrix.triangles_per_node` per plane: every
        trial's edges index into the flattened ``(trials * n, words)`` row
        stack with a per-trial offset, so one edge-gather/AND/popcount sweep
        (:func:`repro.graph.bitmatrix._gather_triangles`) serves all planes
        — ``O(E_total ceil(n/64))`` word operations, no per-node loop.  The
        numba kernel (``REPRO_KERNELS``) computes the same counts with a
        per-node bit-extraction loop when available.
        """
        trials, n, words = self.planes.shape
        if n == 0:
            return np.zeros((trials, n), dtype=np.int64)
        kernel = native.triangle_kernel()
        if kernel is not None:
            word_index, bit_shift = bit_index_arrays(n)
            return kernel(
                np.ascontiguousarray(self.planes), word_index, bit_shift
            )
        flat_u = []
        flat_v = []
        for trial in range(trials):
            rows, cols = self.trial_edges(trial)
            if rows.size == 0:
                continue
            offset = trial * n
            flat_u.append(rows + offset)
            flat_v.append(cols + offset)
        if not flat_u:
            return np.zeros((trials, n), dtype=np.int64)
        counts = _gather_triangles(
            self.planes.reshape(trials * n, words),
            np.concatenate(flat_u),
            np.concatenate(flat_v),
            trials * n,
        )
        return counts.reshape(trials, n)

    def intra_community_edges(
        self, labels: np.ndarray, num_communities: int
    ) -> np.ndarray:
        """``(trials, num_communities)`` intra-community edge counts.

        One packed community indicator serves every plane: member rows of
        all trials are masked and popcounted together, chunked to the shared
        temporary budget.
        """
        labels = np.asarray(labels, dtype=np.int64)
        counts = np.zeros((self.num_trials, num_communities), dtype=np.int64)
        one = np.uint64(1)
        chunk = max(1, _CHUNK_WORDS // max(1, self.num_trials * self.num_words))
        for community in range(num_communities):
            members = np.flatnonzero(labels == community)
            if members.size < 2:
                continue
            mask = np.zeros(self.num_words, dtype=np.uint64)
            np.bitwise_or.at(
                mask, members >> 6, one << (members & 63).astype(np.uint64)
            )
            total = np.zeros(self.num_trials, dtype=np.int64)
            for start in range(0, members.size, chunk):
                block = members[start : start + chunk]
                total += _row_popcounts(self.planes[:, block, :] & mask).sum(axis=-1)
            counts[:, community] = total // 2
        return counts

    def with_edits(self, edits: Sequence[Optional[PlaneEdits]]) -> "BitTensor":
        """A new tensor with per-plane edge edits applied (``None`` = keep).

        Each entry is ``(add_rows, add_cols, drop_rows, drop_cols)`` for its
        plane, duplicate-free within each set (the :meth:`BitMatrix
        .with_edits` contract).  All planes' toggles accumulate in one
        compacted split-bincount pass per polarity.
        """
        if len(edits) != self.num_trials:
            raise ValueError(
                f"got {len(edits)} edit sets for {self.num_trials} planes"
            )
        flat = self.planes.copy().reshape(-1)
        plane_words = self.num_nodes * self.num_words
        polarity = {True: ([], []), False: ([], [])}
        for trial, edit in enumerate(edits):
            if edit is None:
                continue
            add_rows, add_cols, drop_rows, drop_cols = edit
            offset = trial * plane_words
            for clear, edit_rows, edit_cols in (
                (True, drop_rows, drop_cols),
                (False, add_rows, add_cols),
            ):
                edit_rows = np.asarray(edit_rows, dtype=np.int64)
                edit_cols = np.asarray(edit_cols, dtype=np.int64)
                if edit_rows.size == 0:
                    continue
                sym_r = np.concatenate([edit_rows, edit_cols])
                sym_c = np.concatenate([edit_cols, edit_rows])
                positions, bits = polarity[clear]
                positions.append(offset + sym_r * self.num_words + (sym_c >> 6))
                bits.append(sym_c & 63)
        for clear, (positions, bits) in polarity.items():
            if not positions:
                continue
            unique, inverse = np.unique(np.concatenate(positions), return_inverse=True)
            mask = accumulate_bits(inverse, np.concatenate(bits), unique.size)
            if clear:
                flat[unique] &= ~mask
            else:
                flat[unique] |= mask
        return BitTensor(self.num_nodes, flat.reshape(self.planes.shape))

    def __repr__(self) -> str:
        return (
            f"BitTensor(num_trials={self.num_trials}, "
            f"num_nodes={self.num_nodes}, num_words={self.num_words})"
        )
