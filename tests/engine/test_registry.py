"""Tests for the engine's component registries."""

import inspect

import pytest

import repro.core
import repro.defenses
import repro.protocols
from repro.core.base import Attack
from repro.defenses.base import Defense
from repro.engine.registry import ATTACKS, DEFENSES, PROTOCOLS, Registry
from repro.protocols.base import GraphLDPProtocol


def _exported_subclasses(module, base):
    """Concrete subclasses of ``base`` exported via ``module.__all__``."""
    found = []
    for name in module.__all__:
        member = getattr(module, name)
        if (
            inspect.isclass(member)
            and issubclass(member, base)
            and member is not base
            and not inspect.isabstract(member)
        ):
            found.append(member)
    return found


class TestRegistry:
    def test_register_get_create(self):
        registry = Registry("widget")
        registry.register("w", dict)
        assert registry.get("w") is dict
        assert registry.create("w", a=1) == {"a": 1}
        assert "w" in registry and registry.names() == ("w",)

    def test_decorator_form(self):
        registry = Registry("widget")

        @registry.register("listy")
        class Listy(list):
            pass

        assert registry.get("listy") is Listy

    def test_unknown_name_lists_known(self):
        registry = Registry("widget")
        registry.register("known", dict)
        with pytest.raises(KeyError, match="known"):
            registry.get("nope")

    def test_duplicate_name_rejected(self):
        registry = Registry("widget")
        registry.register("w", dict)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("w", list)
        # Re-registering the same factory is an idempotent no-op.
        registry.register("w", dict)

    def test_resolve_unregistered_is_none(self):
        assert Registry("widget").resolve(dict) is None


class TestDefaultRegistrations:
    """Every shipped attack/protocol/defense round-trips through its registry."""

    @pytest.mark.parametrize("cls", _exported_subclasses(repro.core, Attack))
    def test_attack_round_trip(self, cls):
        name = ATTACKS.resolve(cls)
        assert name is not None, f"{cls.__name__} is not registered"
        assert ATTACKS.get(name) is cls

    @pytest.mark.parametrize(
        "cls", _exported_subclasses(repro.protocols, GraphLDPProtocol)
    )
    def test_protocol_round_trip(self, cls):
        name = PROTOCOLS.resolve(cls)
        assert name is not None, f"{cls.__name__} is not registered"
        assert PROTOCOLS.get(name) is cls

    @pytest.mark.parametrize("cls", _exported_subclasses(repro.defenses, Defense))
    def test_defense_round_trip(self, cls):
        name = DEFENSES.resolve(cls)
        assert name is not None, f"{cls.__name__} is not registered"
        assert DEFENSES.get(name) is cls

    def test_paper_names_present(self):
        assert {"degree/mga", "clustering/rva"} <= set(ATTACKS.names())
        assert set(PROTOCOLS.names()) >= {"lfgdpr", "ldpgen"}
        assert {"detect1", "detect2", "naive1", "naive2"} <= set(DEFENSES.names())

    def test_protocol_factories_take_epsilon(self):
        for name in PROTOCOLS:
            protocol = PROTOCOLS.create(name, epsilon=2.0)
            assert protocol.epsilon == 2.0
