"""Privacy-budget allocation between the two atomic graph metrics.

LF-GDPR splits the total budget ``eps`` into ``eps1`` for the adjacency bit
vector (randomized response) and ``eps2`` for the degree (Laplace mechanism),
choosing the split to minimise the estimation error of the target metric.
The paper's attacks assume the attacker knows both sub-budgets, so the split
is an explicit, inspectable object here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class BudgetAllocation:
    """An (eps1, eps2) split of the total privacy budget.

    Attributes
    ----------
    adjacency_epsilon:
        Budget for randomized response on the adjacency bit vector (eps1).
    degree_epsilon:
        Budget for the Laplace mechanism on the degree (eps2).
    """

    adjacency_epsilon: float
    degree_epsilon: float

    def __post_init__(self):
        check_positive(self.adjacency_epsilon, "adjacency_epsilon")
        check_positive(self.degree_epsilon, "degree_epsilon")

    @property
    def total(self) -> float:
        """Total budget ``eps = eps1 + eps2`` (sequential composition)."""
        return self.adjacency_epsilon + self.degree_epsilon


def split_budget(epsilon: float, adjacency_fraction: float = 0.5) -> BudgetAllocation:
    """Split ``epsilon`` into (eps1, eps2) by a fixed fraction.

    LF-GDPR derives task-specific optimal fractions; for the metrics studied
    in the paper an even split is the reference point, and the fraction is a
    knob so experiments can sweep it.
    """
    check_positive(epsilon, "epsilon")
    check_fraction(adjacency_fraction, "adjacency_fraction")
    return BudgetAllocation(
        adjacency_epsilon=epsilon * adjacency_fraction,
        degree_epsilon=epsilon * (1.0 - adjacency_fraction),
    )
