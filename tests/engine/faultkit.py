"""os-level disk-fault injection for storage-plane tests.

The sibling :mod:`crashkit` kills whole worker *processes*; this module
makes individual *writes* fail the way real disks do — short writes, torn
writes at byte *k*, ``EIO``, ``ENOSPC`` after a byte budget — so the result
store, lease directory and distributed workers can prove their graceful-
degradation paths against the faults they were built for.

Scoping is the load-bearing trick: ``os.write`` is patched globally (the
engine modules all do ``import os``, so ``repro.engine.result_store.os``
*is* the one global module), but a :class:`FaultInjector` only intercepts
descriptors whose ``/proc/self/fd`` target lives under its root directory.
pytest's own tempfiles, pipes and capture machinery keep writing through
the real syscall, and a single armed injector breaks exactly the cache
root under test.

Like crashkit, the wrappers survive ``fork``: arm an injector inside a
forked worker (assign ``os.write = injector.write`` — the child's patch is
process-local) to tear a concurrent append mid-line.
"""

import errno
import os

#: The genuine syscall wrappers, captured at import time.
REAL_WRITE = os.write
REAL_REPLACE = os.replace


def fd_path(descriptor: int) -> str:
    """The filesystem path behind an fd ('' for pipes/sockets/closed fds)."""
    try:
        return os.readlink(f"/proc/self/fd/{descriptor}")
    except OSError:
        return ""


class FaultInjector:
    """A stateful ``os.write`` stand-in scoped to files under ``root``.

    Arm exactly one fault mode, then install (or assign in a forked
    child).  ``calls`` counts intercepted writes, ``tripped`` counts
    faults actually delivered; :meth:`disarm` restores pass-through
    behavior without unpatching.
    """

    def __init__(self, root):
        self.root = str(root)
        self.mode = None
        self.calls = 0
        self.tripped = 0
        self._limit = 0
        self._budget = 0
        self._errno = errno.EIO
        self.armed = True

    # ------------------------------------------------------------------
    # Arming (each returns self for one-line setup)
    # ------------------------------------------------------------------
    def short_writes(self, limit: int = 7) -> "FaultInjector":
        """Every matched write lands at most ``limit`` bytes (no error)."""
        self.mode, self._limit = "short", int(limit)
        return self

    def torn_write(self, at_byte: int) -> "FaultInjector":
        """One-shot: the next matched write lands ``at_byte`` bytes then
        raises ``EIO`` — the classic torn append a dying disk leaves."""
        self.mode, self._limit = "torn", int(at_byte)
        return self

    def enospc_after(self, nbytes: int) -> "FaultInjector":
        """Allow ``nbytes`` more bytes under the root, then every matched
        write raises ``ENOSPC`` — a disk filling up mid-sweep."""
        self.mode, self._budget = "enospc", int(nbytes)
        return self

    def fail(self, error: int = errno.EIO) -> "FaultInjector":
        """Every matched write (and rename into the root) raises ``error``."""
        self.mode, self._errno = "fail", int(error)
        return self

    def disarm(self) -> "FaultInjector":
        self.armed = False
        return self

    # ------------------------------------------------------------------
    # The patched syscalls
    # ------------------------------------------------------------------
    def _matches(self, descriptor: int) -> bool:
        return fd_path(descriptor).startswith(self.root)

    def write(self, descriptor: int, data) -> int:
        if not self.armed or self.mode is None or not self._matches(descriptor):
            return REAL_WRITE(descriptor, data)
        data = bytes(data)
        self.calls += 1
        if self.mode == "short":
            if len(data) > self._limit:
                self.tripped += 1
                return REAL_WRITE(descriptor, data[: self._limit])
            return REAL_WRITE(descriptor, data)
        if self.mode == "torn":
            self.mode = None  # one-shot
            self.tripped += 1
            if self._limit > 0:
                REAL_WRITE(descriptor, data[: self._limit])
            raise OSError(errno.EIO, "faultkit: injected torn write")
        if self.mode == "enospc":
            if self._budget >= len(data):
                self._budget -= len(data)
                return REAL_WRITE(descriptor, data)
            self.tripped += 1
            raise OSError(errno.ENOSPC, "faultkit: injected disk full")
        self.tripped += 1  # mode == "fail"
        raise OSError(self._errno, "faultkit: injected write failure")

    def replace(self, source, destination):
        if (
            self.armed
            and self.mode == "fail"
            and str(destination).startswith(self.root)
        ):
            self.tripped += 1
            raise OSError(self._errno, "faultkit: injected rename failure")
        return REAL_REPLACE(source, destination)

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, monkeypatch) -> "FaultInjector":
        """Patch ``os.write``/``os.replace`` for the test (auto-undone)."""
        monkeypatch.setattr(os, "write", self.write)
        monkeypatch.setattr(os, "replace", self.replace)
        return self
