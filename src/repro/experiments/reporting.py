"""Plain-text rendering of experiment results.

The benchmark harness prints these tables; they carry the same rows/series
the paper's figures plot.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an ASCII table with right-aligned numeric-ish columns."""
    rendered_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(render_line(list(headers)))
    lines.append(separator)
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def _render_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)
