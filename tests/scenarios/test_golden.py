"""The golden-result regression harness.

Replays every scenario that has a recorded fixture under ``tests/golden``
at the fixture's own tiny configuration and asserts the aggregate outputs
(means, standard errors, task-batch hash) still match within tolerance.
This is the end-to-end guard for the whole attack/defense/protocol stack:
any change that silently alters numeric results fails here.

Re-record deliberately changed outputs with ``python -m repro scenario
record`` (see README "Scenarios" for the tolerance policy).
"""

from pathlib import Path

import pytest

from repro.scenarios import golden as golden_store
from repro.scenarios.registry import SCENARIOS

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"

RECORDED = sorted(
    name for name in SCENARIOS if golden_store.golden_path(name, GOLDEN_DIR).is_file()
)


def test_fixtures_exist_for_every_paper_artifact():
    """fig6-fig15 and table2 must all carry golden fixtures."""
    expected = {
        "table2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
        "fig12a", "fig12b", "fig13a", "fig13b", "fig14", "fig15",
    }
    missing = expected - set(RECORDED)
    assert not missing, f"paper artifacts without golden fixtures: {sorted(missing)}"


def test_every_registered_scenario_is_recorded():
    """New catalog entries must ship with a fixture (scenario record)."""
    missing = sorted(set(SCENARIOS) - set(RECORDED))
    assert not missing, (
        f"scenarios without golden fixtures: {missing}; "
        "run 'python -m repro scenario record' and commit tests/golden"
    )


@pytest.mark.parametrize("name", RECORDED)
def test_replay_matches_golden(name):
    problems = golden_store.check_golden(SCENARIOS.create(name), GOLDEN_DIR)
    assert not problems, "golden drift:\n" + "\n".join(problems)


@pytest.mark.parametrize("name", RECORDED)
def test_replay_matches_golden_with_telemetry(name):
    """Tracing must never perturb results: spans touch no RNG state, so a
    fully traced replay stays zero-diff against every fixture."""
    from repro.telemetry.core import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        problems = golden_store.check_golden(SCENARIOS.create(name), GOLDEN_DIR)
    assert not problems, "golden drift under telemetry:\n" + "\n".join(problems)
    if SCENARIOS.create(name).kind == "sweep":
        assert any(span.name == "task.execute" for span in tracer.spans), (
            "tracer was installed but recorded no task spans"
        )


class TestHarnessSensitivity:
    """The comparator itself must catch drift (a harness that can't fail
    protects nothing)."""

    def _golden_and_result(self, name="fig6"):
        spec = SCENARIOS.create(name)
        golden = golden_store.load_golden(name, GOLDEN_DIR)
        config = golden_store.golden_config(golden)
        from repro.engine.cache import NullCache
        from repro.scenarios.run import run_scenario

        return spec, golden, run_scenario(spec, config, cache=NullCache())

    def test_detects_mean_drift(self):
        spec, golden, result = self._golden_and_result()
        panel = next(iter(golden["panels"].values()))
        panel["series"]["MGA"]["mean"][0] += 1e-3
        problems = golden_store.compare_golden(golden, result, spec)
        assert any("MGA" in p and "mean[0]" in p for p in problems)

    def test_detects_missing_series(self):
        spec, golden, result = self._golden_and_result()
        panel = next(iter(golden["panels"].values()))
        panel["series"]["Ghost"] = {"mean": [], "stderr": []}
        problems = golden_store.compare_golden(golden, result, spec)
        assert any("series set changed" in p for p in problems)

    def test_detects_grid_change(self):
        spec, golden, result = self._golden_and_result()
        panel = next(iter(golden["panels"].values()))
        panel["values"][0] = 99.0
        problems = golden_store.compare_golden(golden, result, spec)
        assert any("value grid changed" in p for p in problems)

    def test_detects_table_change(self):
        spec, golden, result = self._golden_and_result("table2")
        golden["table"][0][3] += 1
        problems = golden_store.compare_golden(golden, result, spec)
        assert any("table rows changed" in p for p in problems)

    def test_non_finite_fixture_value_is_named_as_such(self):
        """A NaN in the fixture must read 'non-finite value', not a numeric diff."""
        spec, golden, result = self._golden_and_result()
        panel = next(iter(golden["panels"].values()))
        panel["series"]["MGA"]["mean"][0] = float("nan")
        problems = golden_store.compare_golden(golden, result, spec)
        assert any("non-finite value" in p for p in problems)

    def test_close_has_explicit_non_finite_semantics(self):
        nan, inf = float("nan"), float("inf")
        close = golden_store._close
        assert close(nan, nan, 1e-9, 0.0), "two NaNs must match themselves"
        assert close(inf, inf, 1e-9, 0.0)
        assert not close(inf, -inf, 1e-9, 0.0)
        assert not close(nan, 1.0, 1e-9, 0.0)
        assert not close(1.0, inf, 1e-9, 0.0)
        assert close(1.0, 1.0 + 1e-12, 1e-9, 0.0)

    def test_batch_hash_pins_seed_derivation(self):
        """The recorded hash covers task identities, so a seed change trips it."""
        name = "fig6"
        spec = SCENARIOS.create(name)
        golden = golden_store.load_golden(name, GOLDEN_DIR)
        config = golden_store.golden_config(golden)
        assert golden["batch_hash"] == golden_store.batch_hash(spec, config)
        shifted = golden_store.batch_hash(spec, config.with_overrides(seed=1))
        assert shifted != golden["batch_hash"]


def test_record_roundtrip(tmp_path):
    """record_golden writes a fixture check_golden immediately accepts."""
    spec = SCENARIOS.create("fig12a")
    path = golden_store.record_golden(spec, golden_store.GOLDEN_CONFIG, tmp_path)
    assert path.is_file()
    assert golden_store.check_golden(spec, tmp_path) == []
