"""Tests for the bit-packed dense adjacency backend and its dispatch.

The packed and sparse backends must be *bit-identical* — exact integer
triangle counts, degrees and edge counts — across the whole density range,
because the density-adaptive dispatch in ``repro.graph.metrics`` silently
routes between them (and engine cache entries rely on results never
changing).
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import metrics
from repro.graph.adjacency import Graph
from repro.graph.bitmatrix import (
    DEFAULT_DENSITY_THRESHOLD,
    BitMatrix,
    density_threshold,
    should_use_packed,
)
from repro.graph.generators import erdos_renyi_graph, powerlaw_cluster_graph
from repro.graph.metrics import edge_density, triangles_per_node
from repro.ldp.perturbation import perturb_graph
from repro.utils.sparse import pair_count


class TestPacking:
    def test_triangle_graph(self):
        bm = BitMatrix.from_graph(Graph(4, [(0, 1), (1, 2), (2, 0)]))
        assert bm.degrees().tolist() == [2, 2, 2, 0]
        assert bm.triangles_per_node().tolist() == [1, 1, 1, 0]
        assert bm.num_edges == 3

    def test_empty_graph(self):
        bm = BitMatrix.from_graph(Graph(0))
        assert bm.degrees().size == 0
        assert bm.triangles_per_node().size == 0
        assert bm.num_edges == 0
        assert bm.edge_density() == 0.0

    def test_single_node(self):
        bm = BitMatrix.from_graph(Graph(1))
        assert bm.degrees().tolist() == [0]
        assert bm.triangles_per_node().tolist() == [0]
        assert bm.edge_density() == 0.0

    def test_two_nodes(self):
        bm = BitMatrix.from_graph(Graph(2, [(0, 1)]))
        assert bm.degrees().tolist() == [1, 1]
        assert bm.triangles_per_node().tolist() == [0, 0]
        assert bm.num_edges == 1
        assert bm.edge_density() == 1.0

    def test_word_boundary_nodes(self):
        # Nodes 63/64/65 straddle the uint64 word boundary.
        g = Graph(66, [(63, 64), (64, 65), (63, 65), (0, 63)])
        bm = BitMatrix.from_graph(g)
        assert np.array_equal(bm.degrees(), g.degrees())
        assert bm.triangles_per_node().tolist() == triangles_per_node(g).tolist()

    def test_complete_graph(self):
        k8 = Graph(8, [(i, j) for i in range(8) for j in range(i + 1, 8)])
        bm = BitMatrix.from_graph(k8)
        assert bm.edge_density() == 1.0
        # Each node of K8 is in C(7, 2) = 21 triangles.
        assert bm.triangles_per_node().tolist() == [21] * 8

    def test_shape_validated(self):
        with pytest.raises(ValueError, match="expected"):
            BitMatrix(4, np.zeros((4, 2), dtype=np.uint64))

    def test_repr(self):
        assert repr(BitMatrix.from_graph(Graph(65))) == "BitMatrix(num_nodes=65, num_words=2)"


@pytest.mark.parametrize("density", [0.001, 0.01, 0.05, 0.2, 0.5, 0.9])
def test_backends_bit_identical_across_densities(density):
    """Packed == sparse == networkx, exactly, from near-empty to near-complete."""
    g = erdos_renyi_graph(130, density, rng=int(density * 1000))
    packed = metrics._triangles_packed(g)
    sparse = metrics._triangles_sparse(g)
    assert np.array_equal(packed, sparse)
    theirs = nx.triangles(g.to_networkx())
    assert packed.tolist() == [theirs[i] for i in range(g.num_nodes)]
    bm = BitMatrix.from_graph(g)
    assert np.array_equal(bm.degrees(), g.degrees())
    assert bm.num_edges == g.num_edges
    assert bm.edge_density() == edge_density(g)


@given(
    n=st.integers(min_value=0, max_value=70),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    density=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_backend_equality_property(n, seed, density):
    """Exact packed/sparse agreement on arbitrary random graphs, n=0 included."""
    total = pair_count(n)
    rng = np.random.default_rng(seed)
    count = int(round(density * total))
    codes = rng.choice(total, size=count, replace=False) if count else np.empty(0, np.int64)
    g = Graph.from_codes(n, np.asarray(codes, dtype=np.int64))
    bm = BitMatrix.from_graph(g)
    assert np.array_equal(bm.degrees(), g.degrees())
    assert bm.num_edges == g.num_edges
    if n > 0:
        assert np.array_equal(metrics._triangles_packed(g), metrics._triangles_sparse(g))


def test_chunked_popcount_passes_match_single_pass(monkeypatch):
    """Bounding the gather/AND temporaries must not change any count."""
    from repro.graph import bitmatrix

    g = erdos_renyi_graph(100, 0.5, rng=9)
    labels = np.arange(100) % 3
    reference = BitMatrix.from_graph(g)
    expected_triangles = reference.triangles_per_node()
    expected_intra = reference.intra_community_edges(labels, 3)
    monkeypatch.setattr(bitmatrix, "_CHUNK_WORDS", 4)  # force many tiny chunks
    assert np.array_equal(reference.triangles_per_node(), expected_triangles)
    assert np.array_equal(reference.intra_community_edges(labels, 3), expected_intra)


class TestIntraCommunityEdges:
    def test_matches_edge_bucketing(self):
        g = erdos_renyi_graph(90, 0.4, rng=3)
        labels = np.arange(90) % 4
        bm = BitMatrix.from_graph(g)
        rows, cols = g.edge_arrays()
        same = labels[rows] == labels[cols]
        expected = np.bincount(labels[rows[same]], minlength=4)
        assert np.array_equal(bm.intra_community_edges(labels, 4), expected)

    def test_singleton_and_empty_communities(self):
        g = Graph(5, [(0, 1), (1, 2)])
        labels = np.array([0, 0, 1, 2, 2])
        counts = BitMatrix.from_graph(g).intra_community_edges(labels, 4)
        assert counts.tolist() == [1, 0, 0, 0]


class TestDispatch:
    def _count_backends(self, monkeypatch):
        calls = {"packed": 0, "sparse": 0}
        real_packed, real_sparse = metrics._triangles_packed, metrics._triangles_sparse

        def packed(graph):
            calls["packed"] += 1
            return real_packed(graph)

        def sparse(graph):
            calls["sparse"] += 1
            return real_sparse(graph)

        monkeypatch.setattr(metrics, "_triangles_packed", packed)
        monkeypatch.setattr(metrics, "_triangles_sparse", sparse)
        return calls

    def test_low_epsilon_perturbed_graph_takes_packed_path(self, monkeypatch):
        calls = self._count_backends(monkeypatch)
        g = powerlaw_cluster_graph(150, 4, 0.5, rng=0)
        perturbed = perturb_graph(g, 0.5, rng=1)
        assert edge_density(perturbed) > DEFAULT_DENSITY_THRESHOLD
        assert should_use_packed(perturbed)
        triangles_per_node(perturbed)
        assert calls == {"packed": 1, "sparse": 0}

    def test_sparse_input_graph_takes_csr_path(self, monkeypatch):
        calls = self._count_backends(monkeypatch)
        g = powerlaw_cluster_graph(400, 4, 0.5, rng=0)  # density ~ 2m/n = 0.02
        assert edge_density(g) < DEFAULT_DENSITY_THRESHOLD
        assert not should_use_packed(g)
        triangles_per_node(g)
        assert calls == {"packed": 0, "sparse": 1}

    def test_both_paths_equal_on_same_graph(self):
        g = perturb_graph(powerlaw_cluster_graph(150, 4, 0.5, rng=0), 0.8, rng=2)
        assert np.array_equal(metrics._triangles_packed(g), metrics._triangles_sparse(g))

    def test_threshold_env_override(self, monkeypatch):
        dense = perturb_graph(powerlaw_cluster_graph(100, 4, 0.5, rng=0), 0.5, rng=0)
        assert should_use_packed(dense)
        monkeypatch.setenv("REPRO_DENSE_THRESHOLD", "0.99")
        assert density_threshold() == 0.99
        assert not should_use_packed(dense)

    def test_memory_cap_env_override(self, monkeypatch):
        dense = perturb_graph(powerlaw_cluster_graph(100, 4, 0.5, rng=0), 0.5, rng=0)
        monkeypatch.setenv("REPRO_DENSE_MAX_BYTES", "64")
        assert not should_use_packed(dense)

    def test_tiny_graphs_stay_sparse(self):
        assert not should_use_packed(Graph(2, [(0, 1)]))
        assert not should_use_packed(Graph(0))
