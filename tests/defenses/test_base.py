"""Tests for the defense interface helpers and repair strategies."""

import numpy as np
import pytest

from repro.defenses.base import (
    detection_quality,
    remove_flagged_pairs,
    resample_flagged_rows,
)
from repro.graph.adjacency import Graph
from repro.protocols.base import CollectedReports


@pytest.fixture
def reports():
    graph = Graph(8, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (0, 7)])
    return CollectedReports(
        perturbed_graph=graph,
        reported_degrees=np.full(8, 2.0),
        adjacency_epsilon=2.0,
        degree_epsilon=2.0,
    )


class TestDetectionQuality:
    def test_perfect(self):
        quality = detection_quality(np.array([1, 2]), np.array([1, 2]))
        assert quality.precision == 1.0
        assert quality.recall == 1.0

    def test_partial(self):
        quality = detection_quality(np.array([1, 3]), np.array([1, 2]))
        assert quality.precision == 0.5
        assert quality.recall == 0.5

    def test_empty_flagged(self):
        quality = detection_quality(np.array([]), np.array([1]))
        assert quality.precision == 0.0
        assert quality.recall == 0.0

    def test_no_fakes(self):
        quality = detection_quality(np.array([1]), np.array([]))
        assert quality.recall == 0.0


class TestRemoveFlaggedPairs:
    def test_removes_incident_pairs(self, reports):
        repaired = remove_flagged_pairs(reports, np.array([0]))
        assert not repaired.perturbed_graph.has_edge(0, 1)
        assert not repaired.perturbed_graph.has_edge(0, 7)
        assert repaired.perturbed_graph.has_edge(1, 2)

    def test_no_flagged_is_identity(self, reports):
        assert remove_flagged_pairs(reports, np.array([], dtype=np.int64)) is reports

    def test_original_untouched(self, reports):
        remove_flagged_pairs(reports, np.array([0]))
        assert reports.perturbed_graph.has_edge(0, 1)

    def test_budgets_preserved(self, reports):
        repaired = remove_flagged_pairs(reports, np.array([0]))
        assert repaired.adjacency_epsilon == reports.adjacency_epsilon
        assert repaired.degree_epsilon == reports.degree_epsilon


class TestResampleFlaggedRows:
    def test_old_claims_gone(self, reports):
        repaired = resample_flagged_rows(reports, np.array([0]), rng=0)
        # Old edges may coincidentally be redrawn; run a few seeds and check
        # the redraw is density-driven, not claim-preserving.
        redraw_hits = 0
        for seed in range(20):
            repaired = resample_flagged_rows(reports, np.array([0]), rng=seed)
            redraw_hits += repaired.perturbed_graph.has_edge(0, 1)
        # density = 8/28 ~ 0.29 -> expect ~6 hits, far from 20.
        assert redraw_hits < 15

    def test_density_preserved_roughly(self, reports):
        degrees = []
        for seed in range(50):
            repaired = resample_flagged_rows(reports, np.array([0]), rng=seed)
            degrees.append(repaired.perturbed_graph.degree(0))
        from repro.graph.metrics import edge_density

        expected = edge_density(reports.perturbed_graph) * 7
        assert np.mean(degrees) == pytest.approx(expected, rel=0.4)

    def test_flagged_pair_drawn_once(self, reports):
        # Resampling two flagged users must not crash or double-add pairs.
        repaired = resample_flagged_rows(reports, np.array([0, 1]), rng=0)
        assert repaired.perturbed_graph.num_nodes == 8

    def test_deterministic(self, reports):
        a = resample_flagged_rows(reports, np.array([0]), rng=3)
        b = resample_flagged_rows(reports, np.array([0]), rng=3)
        assert a.perturbed_graph == b.perturbed_graph

    def test_no_flagged_identity(self, reports):
        assert resample_flagged_rows(reports, np.array([], dtype=np.int64)) is reports
