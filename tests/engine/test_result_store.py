"""Tests for the sharded result store: migration, concurrency, validation.

The store replaces the legacy one-JSON-file-per-task cache with 256
append-only shards.  Pinned here:

* **read-through migration** — a cache written by the legacy layout keeps
  answering (no recompute) and converges to shards;
* **concurrent appenders** — two processes appending to the same shard
  files interleave whole lines, never fragments;
* miss semantics — version bumps, identity mismatches and torn trailing
  lines degrade to misses, never wrong results.
"""

import json
import multiprocessing

import pytest

from repro.engine.cache import CACHE_VERSION, NullCache, ResultCache
from repro.engine.executors import SerialExecutor, run_batch, run_tasks
from repro.engine.graph_store import GraphStore
from repro.engine.result_store import ShardedResultStore
from repro.engine.tasks import TrialTask, derive_trial_seed, graph_fingerprint
from repro.graph.generators import powerlaw_cluster_graph


class CountingExecutor(SerialExecutor):
    def __init__(self):
        self.executed = 0

    def execute(self, tasks, graph, labels=None):
        self.executed += len(tasks)
        return super().execute(tasks, graph, labels)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(100, 3, 0.4, rng=0)


def make_tasks(graph, count, tag="store"):
    graph_key = graph_fingerprint(graph)
    return [
        TrialTask(
            graph_key=graph_key, metric="degree_centrality",
            attack="degree/rva", protocol="lfgdpr",
            epsilon=4.0, beta=0.05, gamma=0.05,
            seed=derive_trial_seed(0, f"{tag}|{index}"), trial=index,
        )
        for index in range(count)
    ]


class TestLegacyReadThrough:
    def test_legacy_entries_hit_without_recompute(self, graph, tmp_path):
        """A cache seeded by the legacy layout answers through the store."""
        tasks = make_tasks(graph, 6)
        legacy = ResultCache(tmp_path)
        gains = run_tasks(tasks, graph, executor=SerialExecutor(), cache=legacy)

        store = ShardedResultStore(tmp_path)
        executor = CountingExecutor()
        replay = run_tasks(tasks, graph, executor=executor, cache=store)
        assert executor.executed == 0, "legacy entries must not recompute"
        assert store.hits == len(tasks) and store.misses == 0
        assert replay == gains

    def test_read_through_migrates_to_shards(self, graph, tmp_path):
        """A legacy hit is appended to its shard; fresh stores use the shard."""
        tasks = make_tasks(graph, 4)
        legacy = ResultCache(tmp_path)
        gains = run_tasks(tasks, graph, executor=SerialExecutor(), cache=legacy)

        store = ShardedResultStore(tmp_path)
        for task in tasks:
            store.get(task)
        assert list(tmp_path.glob("shard-*.jsonl")), "migration wrote no shards"

        # Remove the legacy files: the shards alone must now answer.
        for entry in tmp_path.glob("[0-9a-f][0-9a-f]/*.json"):
            entry.unlink()
        fresh = ShardedResultStore(tmp_path)
        assert [fresh.get(task) for task in tasks] == gains
        assert fresh.hits == len(tasks) and fresh.misses == 0

    def test_heterogeneous_batch_round_trip(self, tmp_path):
        """run_batch persists and replays a multi-graph batch."""
        graph_a = powerlaw_cluster_graph(60, 3, 0.4, rng=0)
        graph_b = powerlaw_cluster_graph(70, 3, 0.4, rng=1)
        tasks = make_tasks(graph_a, 3, tag="a") + make_tasks(graph_b, 3, tag="b")
        with GraphStore() as store:
            store.add(graph_a)
            store.add(graph_b)
            cache = ShardedResultStore(tmp_path)
            first = run_batch(tasks, store, cache=cache)
            executor = CountingExecutor()
            replay = run_batch(tasks, store, executor=executor, cache=ShardedResultStore(tmp_path))
        assert executor.executed == 0
        assert replay == first


def _append_entries(root, start, count, barrier):
    """Worker: append ``count`` results, synchronised to maximise overlap."""
    graph = powerlaw_cluster_graph(100, 3, 0.4, rng=0)
    store = ShardedResultStore(root)
    tasks = make_tasks(graph, count, tag="concurrent")
    barrier.wait()
    for index, task in enumerate(tasks):
        store.put(task, float(start + index))


class TestConcurrentWriters:
    def test_two_processes_append_to_same_shards(self, graph, tmp_path):
        """Interleaved appends to one shard leave every line parseable."""
        count = 40
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(2)
        workers = [
            context.Process(target=_append_entries, args=(tmp_path, 0, count, barrier))
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert all(worker.exitcode == 0 for worker in workers)

        # Both processes wrote the identical task set, so every shard line —
        # whatever the interleaving — must parse and carry a known hash.
        tasks = make_tasks(graph, count, tag="concurrent")
        expected_hashes = {task.content_hash() for task in tasks}
        lines = 0
        for shard in tmp_path.glob("shard-*.jsonl"):
            for line in shard.read_text(encoding="utf-8").splitlines():
                entry = json.loads(line)  # raises on a torn/fragmented line
                assert entry["hash"] in expected_hashes
                lines += 1
        assert lines == 2 * count, "each process appends one line per task"

        store = ShardedResultStore(tmp_path)
        gains = [store.get(task) for task in tasks]
        assert gains == [float(index) for index in range(count)]
        assert store.hits == count


class TestMissSemantics:
    def test_version_bump_is_a_miss(self, graph, tmp_path):
        task = make_tasks(graph, 1)[0]
        store = ShardedResultStore(tmp_path)
        digest = task.content_hash()
        entry = {
            "cache_version": CACHE_VERSION + 1,
            "hash": digest,
            "task": {},
            "gain": 1.0,
        }
        store._append(digest, entry)
        fresh = ShardedResultStore(tmp_path)
        assert fresh.get(task) is None and fresh.misses == 1

    def test_identity_mismatch_is_a_miss(self, graph, tmp_path):
        """A colliding hash with a different identity never answers."""
        task, other = make_tasks(graph, 2)
        store = ShardedResultStore(tmp_path)
        store.put(other, 3.0)
        forged = dict(store._index[other.content_hash()[:2]][other.content_hash()])
        forged["hash"] = task.content_hash()
        store._append(task.content_hash(), forged)
        fresh = ShardedResultStore(tmp_path)
        assert fresh.get(task) is None

    def test_torn_trailing_line_skipped(self, graph, tmp_path):
        tasks = make_tasks(graph, 2)
        store = ShardedResultStore(tmp_path)
        store.put(tasks[0], 1.5)
        shard = store.shard_path(tasks[0].content_hash()[:2])
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write('{"cache_version": 1, "hash": "dead')  # torn write
        fresh = ShardedResultStore(tmp_path)
        assert fresh.get(tasks[0]) == 1.5

    def test_unwritable_root_still_answers_from_legacy(self, graph, tmp_path, monkeypatch):
        """Migration is best-effort: a failed shard append must not fail the read."""
        task = make_tasks(graph, 1)[0]
        ResultCache(tmp_path).put(task, 4.5)
        store = ShardedResultStore(tmp_path)

        def refuse(digest, entry):
            raise PermissionError("read-only cache root")

        monkeypatch.setattr(store, "_append", refuse)
        assert store.get(task) == 4.5
        assert store.get(task) == 4.5  # second read answers from the index

    def test_put_then_get_same_instance(self, graph, tmp_path):
        task = make_tasks(graph, 1)[0]
        store = ShardedResultStore(tmp_path)
        assert store.get(task) is None
        store.put(task, 2.25)
        assert store.get(task) == 2.25

    def test_clear_and_len(self, graph, tmp_path):
        tasks = make_tasks(graph, 3)
        legacy = ResultCache(tmp_path)
        legacy.put(tasks[0], 1.0)  # unmigrated legacy entry
        store = ShardedResultStore(tmp_path)
        store.put(tasks[1], 2.0)
        store.put(tasks[2], 3.0)
        assert len(ShardedResultStore(tmp_path)) == 3
        assert ShardedResultStore(tmp_path).clear() == 3
        assert len(ShardedResultStore(tmp_path)) == 0

    def test_null_cache_protocol(self, graph):
        task = make_tasks(graph, 1)[0]
        cache = NullCache()
        assert cache.get(task) is None
        cache.put(task, 1.0)
        assert cache.get(task) is None


class TestStalenessProbe:
    """A long-lived store must see what other processes append behind it."""

    def test_foreign_append_to_loaded_shard_becomes_visible(self, graph, tmp_path):
        tasks = make_tasks(graph, 4, "stale")
        reader = ShardedResultStore(tmp_path)
        for task in tasks:
            assert reader.get(task) is None  # shards now loaded (and empty)

        writer = ShardedResultStore(tmp_path)  # a "different process"
        for index, task in enumerate(tasks):
            writer.put(task, float(index))

        # Without the probe these would all miss forever: the reader's
        # in-memory indexes were parsed before the writer appended.
        for index, task in enumerate(tasks):
            assert reader.get(task) == float(index)
        assert reader.reloads >= 1
        assert reader.stats()["reloads"] == reader.reloads

    def test_own_appends_do_not_trigger_reloads(self, graph, tmp_path):
        store = ShardedResultStore(tmp_path)
        tasks = make_tasks(graph, 6, "selfstale")
        for index, task in enumerate(tasks):
            assert store.get(task) is None
            store.put(task, float(index))
        probe = make_tasks(graph, 12, "selfstale-miss")
        for task in probe:
            store.get(task)
        assert store.reloads == 0, "a store must not re-parse its own writes"

    def test_refresh_drops_probe_state_too(self, graph, tmp_path):
        store = ShardedResultStore(tmp_path)
        (task,) = make_tasks(graph, 1, "refresh-probe")
        store.put(task, 1.0)
        store.refresh()
        assert store._shard_stats == {}
        assert store.get(task) == 1.0


class TestAppendDurability:
    def test_short_writes_never_tear_lines(self, graph, tmp_path, monkeypatch):
        """os.write delivering partial lines must loop, not truncate.

        Simulated short writes (at most 7 bytes per call) must still land
        every entry whole — a torn line mid-shard would silently drop a
        result another worker already paid to compute.
        """
        import os as os_module

        real_write = os_module.write

        def dribble(descriptor, data):
            return real_write(descriptor, bytes(data)[:7])

        monkeypatch.setattr(
            "repro.engine.result_store.os.write", dribble
        )
        store = ShardedResultStore(tmp_path)
        tasks = make_tasks(graph, 5, "dribble")
        for index, task in enumerate(tasks):
            store.put(task, float(index))

        fresh = ShardedResultStore(tmp_path)
        for index, task in enumerate(tasks):
            assert fresh.get(task) == float(index)
        assert fresh.misses == 0

    def test_duplicate_put_appends_no_line(self, graph, tmp_path):
        store = ShardedResultStore(tmp_path)
        (task,) = make_tasks(graph, 1, "dedup")
        store.put(task, 0.25)
        shard = store.shard_path(task.content_hash()[:2])
        size_after_first = shard.stat().st_size
        store.put(task, 0.25)
        assert shard.stat().st_size == size_after_first
        assert store.appends == 1
