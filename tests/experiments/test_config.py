"""Tests for the experiment configuration."""

import pytest

from repro.experiments.config import (
    BETAS,
    DATASET_NAMES,
    DEFAULT_CONFIG,
    DETECT1_THRESHOLDS_CLUSTERING,
    DETECT1_THRESHOLDS_DEGREE,
    DETECT2_BETAS,
    EPSILONS,
    GAMMAS,
    ExperimentConfig,
)


class TestDefaults:
    def test_table3_values(self):
        assert DEFAULT_CONFIG.beta == 0.05
        assert DEFAULT_CONFIG.gamma == 0.05
        assert DEFAULT_CONFIG.epsilon == 4.0

    def test_dataset_order(self):
        assert DATASET_NAMES == ("facebook", "enron", "astroph", "gplus")

    def test_sweep_grids(self):
        assert EPSILONS == (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0)
        assert BETAS == (0.001, 0.005, 0.01, 0.05, 0.1)
        assert GAMMAS == BETAS
        assert DETECT1_THRESHOLDS_DEGREE == (50, 100, 150, 200, 250, 300)
        assert DETECT1_THRESHOLDS_CLUSTERING == (50, 75, 100, 125, 150)
        assert DETECT2_BETAS[-1] == 0.15


class TestConfig:
    def test_with_overrides(self):
        config = DEFAULT_CONFIG.with_overrides(epsilon=2.0, trials=1)
        assert config.epsilon == 2.0
        assert config.trials == 1
        assert config.beta == DEFAULT_CONFIG.beta

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_CONFIG.epsilon = 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(beta=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(epsilon=-1.0)
        with pytest.raises(ValueError):
            ExperimentConfig(trials=0)
