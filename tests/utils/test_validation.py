"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestCheckType:
    def test_accepts_instance(self):
        assert check_type(3, int, "x") == 3

    def test_accepts_tuple(self):
        assert check_type(3.5, (int, float), "x") == 3.5

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("3", int, "x")

    def test_tuple_error_message(self):
        with pytest.raises(TypeError, match="int or float"):
            check_type("3", (int, float), "x")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.5, "eps") == 0.5

    @pytest.mark.parametrize("value", [0, -1, -0.001])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="must be positive"):
            check_positive(value, "eps")

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            check_positive("1", "eps")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "n") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_non_negative(-1, "n")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_invalid(self, value):
        with pytest.raises(ValueError, match="probability"):
            check_probability(value, "p")


class TestCheckFraction:
    def test_accepts_interior(self):
        assert check_fraction(0.05, "beta") == 0.05

    @pytest.mark.parametrize("value", [0.0, 1.0, -0.2, 1.5])
    def test_rejects_boundary_and_outside(self, value):
        with pytest.raises(ValueError, match="strictly between"):
            check_fraction(value, "beta")


class TestCheckInRange:
    def test_accepts_bounds(self):
        assert check_in_range(1, 1, 8, "eps") == 1
        assert check_in_range(8, 1, 8, "eps") == 8

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match=r"in \[1, 8\]"):
            check_in_range(9, 1, 8, "eps")
