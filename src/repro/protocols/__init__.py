"""LDP graph-collection protocols: LF-GDPR and LDPGen."""

from repro.protocols.base import (
    CollectedReports,
    FakeReport,
    GraphLDPProtocol,
    Overrides,
    PairedBaseline,
    PairedCollection,
    SharedGraphPairedCollection,
    TwoRunPairedCollection,
    apply_degree_overrides,
    apply_overrides,
    apply_overrides_tracked,
)
from repro.protocols.estimators import (
    degrees_from_perturbed_graph,
    estimate_clustering_coefficients,
    estimate_modularity,
    fuse_degree_estimates,
    triangle_calibration,
)
from repro.protocols.degree_distribution import (
    degree_histogram,
    estimate_degree_distribution,
    histogram_distance,
)
from repro.protocols.ldpgen import LDPGenProtocol
from repro.protocols.lfgdpr import LFGDPRProtocol

__all__ = [
    "degree_histogram",
    "estimate_degree_distribution",
    "histogram_distance",
    "CollectedReports",
    "FakeReport",
    "GraphLDPProtocol",
    "Overrides",
    "PairedBaseline",
    "PairedCollection",
    "SharedGraphPairedCollection",
    "TwoRunPairedCollection",
    "apply_degree_overrides",
    "apply_overrides",
    "apply_overrides_tracked",
    "degrees_from_perturbed_graph",
    "estimate_clustering_coefficients",
    "estimate_modularity",
    "fuse_degree_estimates",
    "triangle_calibration",
    "LDPGenProtocol",
    "LFGDPRProtocol",
]
