"""The paper's primary contribution: poisoning attacks and their evaluation."""

from repro.core.base import Attack, random_new_neighbors, rr_perturb_neighbor_set
from repro.core.clustering_attacks import ClusteringMGA, ClusteringRNA, ClusteringRVA
from repro.core.degree_attacks import DegreeMGA, DegreeRNA, DegreeRVA
from repro.core.frequency_attacks import (
    FrequencyAttack,
    FrequencyAttackOutcome,
    FrequencyMGA,
    FrequencyRIA,
    FrequencyRPA,
    evaluate_frequency_attack,
)
from repro.core.gain import METRICS, AttackOutcome, average_gain, evaluate_attack
from repro.core.theory import theorem1_degree_gain, theorem2_clustering_gain
from repro.core.threat_model import AttackerKnowledge, ThreatModel
from repro.core.untargeted_attacks import (
    UntargetedConcentratedAttack,
    UntargetedOutcome,
    UntargetedUniformAttack,
    UntargetedWithdrawalAttack,
    evaluate_untargeted_attack,
)

__all__ = [
    "UntargetedConcentratedAttack",
    "UntargetedOutcome",
    "UntargetedUniformAttack",
    "UntargetedWithdrawalAttack",
    "evaluate_untargeted_attack",
    "Attack",
    "random_new_neighbors",
    "rr_perturb_neighbor_set",
    "ClusteringMGA",
    "ClusteringRNA",
    "ClusteringRVA",
    "DegreeMGA",
    "DegreeRNA",
    "DegreeRVA",
    "FrequencyAttack",
    "FrequencyAttackOutcome",
    "FrequencyMGA",
    "FrequencyRIA",
    "FrequencyRPA",
    "evaluate_frequency_attack",
    "METRICS",
    "AttackOutcome",
    "average_gain",
    "evaluate_attack",
    "theorem1_degree_gain",
    "theorem2_clustering_gain",
    "AttackerKnowledge",
    "ThreatModel",
]
