"""Optional numba-accelerated inner loops for the batched bit-plane kernels.

The batched triangle sweep in :mod:`repro.graph.bittensor` is a pure-numpy
block algorithm; on machines with numba installed the popcount/AND inner
loop can instead run as one fused jitted pass with no block temporaries.
Both paths compute identical exact integers — the numba kernel is a
word-for-word transcription of the numpy reduction (SWAR popcount, same
``// 2`` halving) — so the dispatch never changes a result.

Dispatch is controlled by ``REPRO_KERNELS``:

* ``auto`` (default) — use numba when importable, else pure numpy;
* ``numpy`` — force the pure-numpy path even when numba is present;
* ``numba`` — require numba; raises at dispatch time when it is missing,
  so a CI job that *intends* to exercise the jitted path cannot silently
  fall back.

numba is an optional dependency: nothing in this module imports it at
module load, and every public function degrades to ``None``/``False``
answers when it is absent.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

#: Environment variable selecting the kernel backend (auto | numpy | numba).
KERNELS_ENV = "REPRO_KERNELS"

_VALID_MODES = ("auto", "numpy", "numba")

#: Lazily resolved import probe: None = not yet probed.
_NUMBA_AVAILABLE: Optional[bool] = None

#: Lazily compiled jitted kernel (one compilation per process).
_TRIANGLE_KERNEL: Optional[Callable] = None


def kernels_mode() -> str:
    """The configured backend mode, validated against the known values."""
    mode = os.environ.get(KERNELS_ENV, "auto").strip().lower() or "auto"
    if mode not in _VALID_MODES:
        raise ValueError(
            f"{KERNELS_ENV}={mode!r} is not one of {_VALID_MODES}"
        )
    return mode


def numba_available() -> bool:
    """Whether numba can be imported (probed once per process)."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:
            import numba  # noqa: F401

            _NUMBA_AVAILABLE = True
        except ImportError:
            _NUMBA_AVAILABLE = False
    return _NUMBA_AVAILABLE


def use_numba() -> bool:
    """Whether the jitted kernels should serve the current process.

    ``numba`` mode is strict so a misconfigured environment fails loudly
    instead of silently benchmarking the wrong backend.
    """
    mode = kernels_mode()
    if mode == "numpy":
        return False
    if mode == "numba":
        if not numba_available():
            raise RuntimeError(
                f"{KERNELS_ENV}=numba but numba is not importable; "
                "install numba or switch to auto/numpy"
            )
        return True
    return numba_available()


def _build_triangle_kernel() -> Callable:
    """Compile the fused per-plane triangle sweep (called at most once)."""
    import numba
    import numpy as np

    @numba.njit(cache=False, fastmath=False)
    def kernel(planes, word_index, bit_shift):  # pragma: no cover - jitted
        trials, n, words = planes.shape
        counts = np.zeros((trials, n), dtype=np.int64)
        m1 = np.uint64(0x5555555555555555)
        m2 = np.uint64(0x3333333333333333)
        m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
        h01 = np.uint64(0x0101010101010101)
        one = np.uint64(1)
        for t in range(trials):
            plane = planes[t]
            for i in range(n):
                row = plane[i]
                total = 0
                for j in range(n):
                    if (row[word_index[j]] >> bit_shift[j]) & one:
                        other = plane[j]
                        for w in range(words):
                            x = row[w] & other[w]
                            # SWAR popcount: exact for all uint64 values.
                            x -= (x >> np.uint64(1)) & m1
                            x = (x & m2) + ((x >> np.uint64(2)) & m2)
                            x = (x + (x >> np.uint64(4))) & m4
                            total += int((x * h01) >> np.uint64(56))
                counts[t, i] = total // 2
        return counts

    return kernel


def triangle_kernel() -> Optional[Callable]:
    """The jitted ``(planes, word_index, bit_shift) -> counts`` sweep.

    Returns ``None`` when the numpy path should serve (mode/availability);
    the caller falls back to its block-vectorized implementation.
    """
    if not use_numba():
        return None
    global _TRIANGLE_KERNEL
    if _TRIANGLE_KERNEL is None:
        _TRIANGLE_KERNEL = _build_triangle_kernel()
    return _TRIANGLE_KERNEL
