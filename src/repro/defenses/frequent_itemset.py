"""Frequent-itemsets-based detection (Detect1, §VII-A).

MGA's fake users claim overlapping sets of targets (and, for the clustering
attack, each other), so pairs of nodes co-occur in many reported bit vectors
far beyond what perturbation noise produces.  The countermeasure:

1. mine node *pairs* that co-occur in suspiciously many bit vectors
   (frequent 2-itemsets — the level Apriori reaches first and the one the
   attack pattern manifests at);
2. flag every user whose bit vector contains more than ``threshold``
   frequent itemsets;
3. reconstruct flagged users' connections (here: re-drawn at ambient
   density; see ``repro.defenses.base.resample_flagged_rows``).

Mining runs vectorised over the sparse report matrix rather than through the
generic :mod:`repro.defenses.apriori` miner — same semantics (validated in
tests), graph-scale performance.  The Apriori property is still what makes
it tractable: only *individually* popular columns can participate in a
frequent pair, so co-occurrence is computed on the candidate columns only.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.defenses.base import Defense, resample_flagged_rows
from repro.protocols.base import CollectedReports
from repro.utils.rng import RngLike
from repro.utils.validation import check_positive


class FrequentItemsetDefense(Defense):
    """Detect1: frequent co-occurring claim pairs expose coordinated fakes.

    Parameters
    ----------
    threshold:
        A user is flagged when its bit vector contains more than this many
        frequent pairs (the x-axis of Figs. 12(a)/13(a)).
    item_support / pair_support:
        Minimum column count for candidate items and minimum co-occurrence
        for a frequent pair.  ``None`` (default) derives both from the data:
        items need counts above mean + 2 std of the column counts; pairs
        need co-occurrence above the independence expectation plus
        3 binomial standard deviations.
    rng:
        Seed for the reconstruction redraw.
    """

    name = "Detect1"

    def __init__(
        self,
        threshold: int = 100,
        item_support: int | None = None,
        pair_support: int | None = None,
        rng: RngLike = 0,
    ):
        check_positive(threshold, "threshold")
        self.threshold = int(threshold)
        self.item_support = item_support
        self.pair_support = pair_support
        self.rng = rng

    # ------------------------------------------------------------------
    def frequent_pair_counts(self, reports: CollectedReports) -> np.ndarray:
        """Per-user count of frequent pairs contained in their bit vector."""
        adjacency = reports.perturbed_graph.csr().astype(np.int64)
        n = adjacency.shape[0]
        column_counts = np.asarray(adjacency.sum(axis=0)).ravel()

        if self.item_support is not None:
            item_support = self.item_support
        else:
            # Apriori prune: only above-average columns can be part of a
            # suspicious pair (fake coordination always *adds* claims).
            item_support = column_counts.mean()
        candidates = np.flatnonzero(column_counts >= item_support)
        if candidates.size < 2:
            return np.zeros(n, dtype=np.int64)

        submatrix = adjacency[:, candidates].tocsc()
        cooccurrence = (submatrix.T @ submatrix).toarray()
        np.fill_diagonal(cooccurrence, 0)

        if self.pair_support is not None:
            frequent = cooccurrence >= self.pair_support
        else:
            # Independence baseline: co-occurrence of columns a, b is
            # Binomial(n, (cnt_a/n)(cnt_b/n)) under no coordination.
            rates = column_counts[candidates] / n
            expected = n * np.outer(rates, rates)
            sigma = np.sqrt(np.maximum(expected * (1.0 - np.outer(rates, rates)), 1e-12))
            frequent = cooccurrence > expected + 3.0 * sigma
        frequent = sp.csr_matrix(frequent.astype(np.int64))

        # count_i = (1/2) sum_{(a,b) frequent} S[i,a] S[i,b]
        per_row = submatrix.multiply(submatrix @ frequent).sum(axis=1)
        return (np.asarray(per_row).ravel() // 2).astype(np.int64)

    def detect(self, reports: CollectedReports) -> np.ndarray:
        counts = self.frequent_pair_counts(reports)
        return np.flatnonzero(counts > self.threshold).astype(np.int64)

    def repair(self, reports: CollectedReports, flagged: np.ndarray) -> CollectedReports:
        return resample_flagged_rows(reports, flagged, rng=self.rng)
