"""Property-based tests for the LDP primitives (Hypothesis).

Three families of invariants, each over wide randomised parameter ranges:

* **Simplex** — every oracle's per-report perturbation probabilities form a
  probability distribution: ``p``/``q`` in [0, 1], ``p > q`` (signal
  exists), and the full outcome distribution sums to 1.
* **Unbiasedness** — the ``(count/n - q) / (p - q)`` calibration exactly
  inverts the perturbation *in expectation*: feeding the analytic expected
  support counts through the estimator returns the true frequencies.
* **Epsilon monotonicity** — more budget means more signal: keep/support
  probabilities increase and noise scales decrease as epsilon grows.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.ldp.frequency_oracles import KRR, OLH, OUE  # noqa: E402
from repro.ldp.mechanisms import (  # noqa: E402
    calibrate_bit_counts,
    degree_noise_scale,
    perturb_bits,
    rr_keep_probability,
)

ORACLES = (KRR, OUE, OLH)

domains = st.integers(min_value=2, max_value=64)
epsilons = st.floats(min_value=0.05, max_value=10.0, allow_nan=False)
#: Distinct epsilon pairs for monotonicity checks, ordered eps_lo < eps_hi.
epsilon_pairs = st.tuples(epsilons, epsilons).filter(lambda pair: abs(pair[0] - pair[1]) > 1e-6)

COMMON = dict(max_examples=50, deadline=None)


def _frequencies(draw, domain_size):
    """A true frequency vector on the probability simplex."""
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=domain_size, max_size=domain_size,
        ).filter(lambda w: sum(w) > 0)
    )
    weights = np.asarray(weights, dtype=np.float64)
    return weights / weights.sum()


class TestSimplex:
    @pytest.mark.parametrize("oracle_cls", ORACLES)
    @settings(**COMMON)
    @given(domain_size=domains, epsilon=epsilons)
    def test_support_probabilities_are_probabilities(self, oracle_cls, domain_size, epsilon):
        oracle = oracle_cls(domain_size, epsilon)
        p = oracle.support_probability_true
        q = oracle.support_probability_false
        assert 0.0 <= q < p <= 1.0

    @settings(**COMMON)
    @given(domain_size=domains, epsilon=epsilons)
    def test_krr_outcome_distribution_sums_to_one(self, domain_size, epsilon):
        """kRR reports one of d outcomes: p + (d-1) q must be exactly 1."""
        oracle = KRR(domain_size, epsilon)
        total = oracle.support_probability_true + (domain_size - 1) * oracle.support_probability_false
        assert total == pytest.approx(1.0, abs=1e-12)

    @settings(**COMMON)
    @given(domain_size=domains, epsilon=epsilons)
    def test_olh_bucket_distribution_sums_to_one(self, domain_size, epsilon):
        """Within the hashed bucket domain, OLH's kRR outcomes sum to 1."""
        oracle = OLH(domain_size, epsilon)
        g = oracle.num_buckets
        p = oracle.support_probability_true
        q_bucket = (1.0 - p) / (g - 1)  # probability of each specific other bucket
        assert p + (g - 1) * q_bucket == pytest.approx(1.0, abs=1e-12)
        # The marginal false-support probability is the uniform bucket mass.
        assert oracle.support_probability_false == pytest.approx(1.0 / g)

    @settings(**COMMON)
    @given(epsilon=st.floats(min_value=0.0, max_value=20.0, allow_nan=False))
    def test_rr_keep_probability_in_half_open_unit(self, epsilon):
        keep = rr_keep_probability(epsilon)
        assert 0.5 <= keep < 1.0
        # Keep + flip is a two-outcome distribution.
        assert keep + (1.0 - keep) == pytest.approx(1.0)

    @settings(**COMMON)
    @given(
        epsilon=st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        shape=st.integers(min_value=1, max_value=200),
    )
    def test_perturb_bits_outputs_stay_binary(self, epsilon, seed, shape):
        bits = np.random.default_rng(seed).integers(0, 2, size=shape)
        reported = perturb_bits(bits, epsilon, rng=seed)
        assert reported.shape == bits.shape
        assert np.isin(reported, (0, 1)).all()


class TestUnbiasedness:
    @pytest.mark.parametrize("oracle_cls", ORACLES)
    @settings(**COMMON)
    @given(data=st.data(), domain_size=domains, epsilon=epsilons,
           num_users=st.integers(min_value=1, max_value=10_000))
    def test_calibration_inverts_expected_support(self, oracle_cls, data, domain_size,
                                                  epsilon, num_users):
        """E[estimate] == true frequencies, by the calibration identity.

        For every oracle, E[support count of item v] =
        ``n * (f_v p + (1 - f_v) q)``; pushing that expectation through
        ``(count/n - q) / (p - q)`` must return ``f_v`` exactly — i.e. the
        estimator is unbiased whatever the true distribution.
        """
        oracle = oracle_cls(domain_size, epsilon)
        frequencies = _frequencies(data.draw, domain_size)
        p = oracle.support_probability_true
        q = oracle.support_probability_false
        expected_counts = num_users * (frequencies * p + (1.0 - frequencies) * q)
        estimate = (expected_counts / num_users - q) / (p - q)
        np.testing.assert_allclose(estimate, frequencies, rtol=1e-9, atol=1e-12)

    @settings(**COMMON)
    @given(
        epsilon=st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
        true_ones=st.integers(min_value=0, max_value=500),
        extra_zeros=st.integers(min_value=0, max_value=500),
    )
    def test_bit_count_calibration_inverts_expectation(self, epsilon, true_ones, extra_zeros):
        """calibrate_bit_counts undoes randomized response in expectation."""
        total = true_ones + extra_zeros
        keep = rr_keep_probability(epsilon)
        expected_ones = true_ones * keep + (total - true_ones) * (1.0 - keep)
        estimate = calibrate_bit_counts(expected_ones, total, epsilon)
        assert estimate == pytest.approx(true_ones, abs=1e-8)

    @pytest.mark.parametrize("oracle_cls", ORACLES)
    def test_empirical_unbiasedness_smoke(self, oracle_cls):
        """Monte-Carlo sanity check at fixed seed: estimates approach truth."""
        oracle = oracle_cls(8, 2.0)
        rng = np.random.default_rng(0)
        values = rng.integers(0, 8, size=60_000)
        truth = np.bincount(values, minlength=8) / values.size
        reports = oracle.perturb(values, rng=rng)
        estimate = oracle.estimate_frequencies(reports)
        np.testing.assert_allclose(estimate, truth, atol=0.02)


class TestEpsilonMonotonicity:
    @pytest.mark.parametrize("oracle_cls", (KRR, OUE))
    @settings(**COMMON)
    @given(domain_size=domains, pair=epsilon_pairs)
    def test_signal_grows_with_budget(self, oracle_cls, domain_size, pair):
        """p - q (the usable signal) strictly increases with epsilon."""
        eps_lo, eps_hi = sorted(pair)
        lo = oracle_cls(domain_size, eps_lo)
        hi = oracle_cls(domain_size, eps_hi)
        signal_lo = lo.support_probability_true - lo.support_probability_false
        signal_hi = hi.support_probability_true - hi.support_probability_false
        assert signal_hi > signal_lo

    @settings(**COMMON)
    @given(pair=epsilon_pairs)
    def test_rr_keep_probability_monotone(self, pair):
        eps_lo, eps_hi = sorted(pair)
        assert rr_keep_probability(eps_hi) > rr_keep_probability(eps_lo)

    @settings(**COMMON)
    @given(pair=epsilon_pairs)
    def test_laplace_scale_antitone(self, pair):
        """More budget, less degree noise."""
        eps_lo, eps_hi = sorted(pair)
        assert degree_noise_scale(eps_hi) < degree_noise_scale(eps_lo)

    @settings(**COMMON)
    @given(
        domain_size=domains,
        buckets=st.integers(min_value=3, max_value=40),
        fractions=st.tuples(
            st.floats(min_value=0.01, max_value=0.99),
            st.floats(min_value=0.01, max_value=0.99),
        ).filter(lambda pair: abs(pair[0] - pair[1]) > 1e-3),
    )
    def test_olh_signal_monotone_at_fixed_bucket_count(self, domain_size, buckets, fractions):
        """OLH's signal grows with budget while the bucket count holds.

        ``num_buckets = round(e^eps) + 1`` is a step function of epsilon, and
        the signal genuinely dips by a hair as the bucket count jumps (the
        rounding walks off the variance optimum), so the clean monotonicity
        property only holds within one bucket-count regime.  Both epsilons
        are drawn from the interval where ``round(e^eps) == buckets - 1``:
        ``eps in [ln(buckets - 1.5), ln(buckets - 0.5))``.
        """
        import math

        low, high = math.log(buckets - 1.5), math.log(buckets - 0.5)
        eps_lo, eps_hi = sorted(low + f * (high - low) * 0.999 for f in fractions)
        lo = OLH(domain_size, eps_lo)
        hi = OLH(domain_size, eps_hi)
        assert lo.num_buckets == hi.num_buckets == buckets
        signal_lo = lo.support_probability_true - lo.support_probability_false
        signal_hi = hi.support_probability_true - hi.support_probability_false
        assert signal_hi > signal_lo
