"""Trace export: JSONL span/counter files, run manifests, summaries.

A traced run leaves two artifacts next to whatever it produced:

* ``<trace>.jsonl`` — one JSON object per line: ``{"type": "span", ...}``
  records with monotonic-ns bounds and attributes, then
  ``{"type": "counter", ...}`` totals.  Append-friendly, greppable and
  cheap to stream-parse at any size;
* ``<trace>.manifest.json`` — the :class:`RunManifest`: what ran (scenario
  names, config, git describe), how much (task counts, wall clock) and how
  well (cache hit/miss totals), as one self-contained JSON document.

``python -m repro trace summarize PATH`` renders the top-spans/counters
table via :func:`summarize_trace`.
"""

from __future__ import annotations

import json
import subprocess
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.telemetry.core import Tracer

#: Manifest format version; bump when the payload layout changes.
MANIFEST_FORMAT = 1


def manifest_path(trace_path: Union[str, Path]) -> Path:
    """Where the manifest of one trace file lives (sibling, .manifest.json)."""
    trace_path = Path(trace_path)
    return trace_path.with_name(trace_path.stem + ".manifest.json")


def git_describe() -> str:
    """``git describe`` of the working tree, or ``"unknown"`` outside git."""
    try:
        return subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip() or "unknown"
    except Exception:
        return "unknown"


@dataclass
class RunManifest:
    """One run's identity card, written next to its trace.

    ``counters`` is the tracer's full counter snapshot — ``cache.hit`` /
    ``cache.miss`` totals live there, which is what the CI warm-run check
    reads.  ``config`` is a plain dict so the manifest stays loadable even
    if :class:`~repro.experiments.config.ExperimentConfig` grows fields.
    """

    scenarios: List[str] = field(default_factory=list)
    config: Dict[str, object] = field(default_factory=dict)
    git: str = "unknown"
    created: str = ""
    wall_seconds: float = 0.0
    task_count: int = 0
    span_count: int = 0
    counters: Dict[str, float] = field(default_factory=dict)
    format: int = MANIFEST_FORMAT

    @classmethod
    def from_tracer(
        cls,
        tracer: Tracer,
        scenarios: List[str],
        config: Optional[Dict[str, object]] = None,
        wall_seconds: float = 0.0,
    ) -> "RunManifest":
        """Snapshot a finished run from its tracer's recorded facts."""
        counters = dict(tracer.counters)
        return cls(
            scenarios=list(scenarios),
            config=dict(config or {}),
            git=git_describe(),
            created=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            wall_seconds=round(float(wall_seconds), 6),
            task_count=int(counters.get("batch.tasks", 0)),
            span_count=len(tracer.spans),
            counters=counters,
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        known = {name for name in cls.__dataclass_fields__}
        return cls(**{key: value for key, value in payload.items() if key in known})

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def write_trace(
    tracer: Tracer,
    path: Union[str, Path],
    manifest: Optional[RunManifest] = None,
) -> Path:
    """Write a tracer's spans and counters as JSONL (plus the manifest)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for span in tracer.spans:
            record = {"type": "span", **span.to_payload()}
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        for name in sorted(tracer.counters):
            record = {"type": "counter", "name": name, "value": tracer.counters[name]}
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    if manifest is not None:
        manifest.span_count = manifest.span_count or len(tracer.spans)
        manifest.write(manifest_path(path))
    return path


def load_trace(path: Union[str, Path]) -> Tuple[List[dict], Dict[str, float]]:
    """Parse a trace file back into (span payloads, counter totals).

    Torn or foreign lines are skipped, mirroring the result store's
    tolerance: a trace written by a crashed run still summarizes.
    """
    spans: List[dict] = []
    counters: Dict[str, float] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if record.get("type") == "span":
                spans.append(record)
            elif record.get("type") == "counter":
                counters[record["name"]] = (
                    counters.get(record["name"], 0) + record["value"]
                )
    return spans, counters


def summarize_trace(path: Union[str, Path], top: int = 15) -> str:
    """The ``trace summarize`` report: top spans by total time + counters."""
    from repro.experiments.reporting import format_table

    spans, counters = load_trace(path)
    by_name: "OrderedDict[str, List[int]]" = OrderedDict()
    for span in spans:
        duration = max(0, span["end_ns"] - span["start_ns"])
        by_name.setdefault(span["name"], []).append(duration)

    span_rows = []
    for name, durations in sorted(
        by_name.items(), key=lambda item: -sum(item[1])
    )[:top]:
        total_ms = sum(durations) / 1e6
        span_rows.append(
            [
                name,
                len(durations),
                round(total_ms, 3),
                round(total_ms / len(durations), 3),
                round(max(durations) / 1e6, 3),
            ]
        )
    blocks = [
        format_table(
            ["span", "count", "total ms", "mean ms", "max ms"],
            span_rows,
            title=f"top spans — {path}",
        )
    ]
    counter_rows = [[name, counters[name]] for name in sorted(counters)]
    if counter_rows:
        blocks.append(format_table(["counter", "value"], counter_rows, title="counters"))
    manifest_file = manifest_path(path)
    if manifest_file.is_file():
        manifest = RunManifest.load(manifest_file)
        blocks.append(
            f"manifest: scenarios={','.join(manifest.scenarios) or '-'} "
            f"git={manifest.git} tasks={manifest.task_count} "
            f"wall={manifest.wall_seconds:.2f}s"
        )
    return "\n\n".join(blocks)
