"""Shared utilities: seeded randomness, argument validation, sparse helpers."""

from repro.utils.rng import RngLike, child_rng, ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "RngLike",
    "child_rng",
    "ensure_rng",
    "spawn_rngs",
    "check_fraction",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]
