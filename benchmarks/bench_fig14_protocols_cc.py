"""Fig. 14 — attacks on LF-GDPR and LDPGen, clustering coefficient (Exp 9).

Expected shapes (paper): all three attacks are effective on both protocols
across the epsilon range, with MGA generally achieving the best performance,
followed by RVA and RNA.
"""

import numpy as np
from conftest import bench_config, emit

from repro.experiments.figures import fig14


def test_fig14_protocol_comparison(benchmark):
    config = bench_config("facebook")

    results = benchmark.pedantic(fig14, args=(config,), rounds=1, iterations=1)

    for name, sweep in results.items():
        emit("fig14_protocols_cc", sweep.format())
    for name, sweep in results.items():
        mga = np.array(sweep.gains_of("MGA"))
        rna = np.array(sweep.gains_of("RNA"))
        assert np.all(np.isfinite(mga)), f"{name}: non-finite MGA gains"
        assert mga.mean() > 0, f"{name}: MGA must be effective"
        assert mga.mean() > rna.mean(), f"{name}: MGA generally beats RNA"
