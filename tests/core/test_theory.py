"""Tests for the Theorem 1 / Theorem 2 closed forms."""

import pytest

from repro.core.theory import theorem1_degree_gain, theorem2_clustering_gain


class TestTheorem1:
    def test_non_negative(self):
        for d in (1.0, 10.0, 100.0, 500.0):
            gain = theorem1_degree_gain(50, 20, 1000, d)
            assert gain >= 0

    def test_linear_in_m(self):
        one = theorem1_degree_gain(1, 20, 1000, 50.0)
        fifty = theorem1_degree_gain(50, 20, 1000, 50.0)
        assert fifty == pytest.approx(50 * one)

    def test_budget_cap(self):
        # With budget >= r every fake connects to all r targets.
        uncapped = theorem1_degree_gain(10, 5, 1000, 100.0)
        assert uncapped == pytest.approx(10 * 5 / 999 * (1.0 - 100.0 / 999))

    def test_budget_binding(self):
        # Budget 3 < r=5: min(r, floor(d~)) = 3.
        capped = theorem1_degree_gain(10, 5, 1000, 3.0)
        assert capped == pytest.approx(10 * 5 / 999 * (3 / 5 - 3.0 / 999))

    def test_decreasing_in_perturbed_degree_when_capped(self):
        # Larger d~ with budget >= r only grows the organic-subtraction term.
        gains = [theorem1_degree_gain(10, 5, 1000, d) for d in (10.0, 100.0, 500.0)]
        assert gains == sorted(gains, reverse=True)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            theorem1_degree_gain(0, 5, 1000, 10.0)
        with pytest.raises(ValueError):
            theorem1_degree_gain(5, 0, 1000, 10.0)
        with pytest.raises(ValueError):
            theorem1_degree_gain(5, 5, 1, 10.0)
        with pytest.raises(ValueError):
            theorem1_degree_gain(5, 5, 1000, -1.0)


class TestTheorem2:
    def test_positive(self):
        assert theorem2_clustering_gain(50, 20, 1000, 50.0, 2.0) > 0

    def test_linear_in_m_and_r(self):
        base = theorem2_clustering_gain(2, 1, 1000, 50.0, 2.0)
        assert theorem2_clustering_gain(4, 1, 1000, 50.0, 2.0) == pytest.approx(2 * base)
        assert theorem2_clustering_gain(2, 3, 1000, 50.0, 2.0) == pytest.approx(3 * base)

    def test_increases_as_perturbed_degree_falls(self):
        # 1/(d~(d~-1)) dominates: sparser perturbed graphs are more fragile.
        gains = [
            theorem2_clustering_gain(10, 5, 1000, d, 2.0) for d in (500.0, 100.0, 20.0)
        ]
        assert gains == sorted(gains)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            theorem2_clustering_gain(0, 5, 1000, 50.0, 2.0)
        with pytest.raises(ValueError):
            theorem2_clustering_gain(5, 5, 1000, 1.0, 2.0)  # d~ <= 1 degenerate
        with pytest.raises(ValueError):
            theorem2_clustering_gain(5, 5, 1000, 50.0, 0.0)  # eps=0 degenerate
        with pytest.raises(ValueError):
            theorem2_clustering_gain(5, 5, 100, 200.0, 2.0)  # p' > 1
