"""Tests for repro.ldp.budget."""

import pytest

from repro.ldp.budget import BudgetAllocation, split_budget


class TestBudgetAllocation:
    def test_total(self):
        allocation = BudgetAllocation(1.5, 2.5)
        assert allocation.total == pytest.approx(4.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            BudgetAllocation(0.0, 1.0)
        with pytest.raises(ValueError):
            BudgetAllocation(1.0, -1.0)

    def test_frozen(self):
        allocation = BudgetAllocation(1.0, 1.0)
        with pytest.raises(AttributeError):
            allocation.adjacency_epsilon = 2.0


class TestSplitBudget:
    def test_even_split_default(self):
        allocation = split_budget(4.0)
        assert allocation.adjacency_epsilon == pytest.approx(2.0)
        assert allocation.degree_epsilon == pytest.approx(2.0)

    def test_custom_fraction(self):
        allocation = split_budget(4.0, adjacency_fraction=0.75)
        assert allocation.adjacency_epsilon == pytest.approx(3.0)
        assert allocation.degree_epsilon == pytest.approx(1.0)

    def test_total_preserved(self):
        allocation = split_budget(3.7, adjacency_fraction=0.3)
        assert allocation.total == pytest.approx(3.7)

    def test_rejects_degenerate_fraction(self):
        with pytest.raises(ValueError):
            split_budget(4.0, adjacency_fraction=1.0)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            split_budget(0.0)
