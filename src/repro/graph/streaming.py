"""Out-of-core row-block views and chunk-accumulated estimators.

The bit-packed backend (:mod:`repro.graph.bitmatrix`) materializes the full
``n x ceil(n/64)`` adjacency matrix — ``n^2/8`` bytes, which at a million
nodes is ~125 GB and far beyond ``REPRO_DENSE_MAX_BYTES``.  This module keeps
the *sorted pair codes* as the only full-graph representation (the
irreducible O(E) form every :class:`~repro.graph.adjacency.Graph` already
holds) and serves the packed form in **row-range blocks** built on demand:

* :func:`iter_packed_row_blocks` — packed uint64 row blocks of any graph,
  block height sized so one block honours ``REPRO_DENSE_MAX_BYTES``.  Each
  block is bit-identical to the corresponding row slice of
  ``BitMatrix.from_graph(graph).rows``, for every block height — assembling
  the blocks reproduces the in-memory matrix exactly.
* chunk-accumulated estimators (:func:`streaming_degrees`,
  :func:`streaming_triangles_per_node`,
  :func:`streaming_intra_community_edges`) whose results equal the dense /
  sparse backends bit for bit (all three count the same exact integers),
  with peak transient memory bounded by the chunk size instead of ``O(E)``
  or ``O(n^2/8)``.

Why this is possible: the codes are sorted in upper-triangle row-major
order, so the edges whose *lower* endpoint falls in a row range occupy one
contiguous code slice (two ``searchsorted`` probes); the edges whose
*upper* endpoint falls in the range are served from a column-sorted
permutation built once per sweep.  A row block therefore costs
``O(E_block)`` — no pass over the full matrix ever happens.

Dispatch: :func:`should_stream` is true for graphs dense enough for packed
counting whose packed form exceeds ``REPRO_DENSE_MAX_BYTES`` —
:func:`repro.graph.metrics.triangles_per_node` routes those here instead of
falling back to the sparse matmul (whose ``A @ A`` intermediate explodes on
near-dense million-node graphs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.graph.bitmatrix import (
    _CHUNK_WORDS,
    _row_popcounts,
    accumulate_bits,
    density_threshold,
    max_packed_bytes,
)
from repro.utils.sparse import decode_pairs, pair_count

#: Default edge-chunk size of the chunk-accumulated estimators (codes per
#: decode pass; 4M codes ~ 96 MB of transients).
DEFAULT_CHUNK_EDGES = 1 << 22


def should_stream(graph) -> bool:
    """Whether dense-friendly metrics on ``graph`` must stream row blocks.

    True for graphs that *would* dispatch to the packed backend on density
    grounds but whose full packed matrix exceeds ``REPRO_DENSE_MAX_BYTES``.
    The streaming path computes the same exact integers, so — like
    :func:`~repro.graph.bitmatrix.should_use_packed` — this predicate only
    affects speed and peak memory, never results.
    """
    n = graph.num_nodes
    if n < 3:
        return False
    if n * n // 8 <= max_packed_bytes():
        return False
    return graph.num_edges / pair_count(n) >= density_threshold()


def rows_per_block(num_nodes: int, max_bytes: int | None = None) -> int:
    """Rows of an ``num_nodes``-wide packed matrix that fit ``max_bytes``.

    Defaults to ``REPRO_DENSE_MAX_BYTES`` — one block is never bigger than
    the cap the dense backend honours.  Always at least 1: a single packed
    row (``ceil(n/64)`` words) is the granularity floor of the format.
    """
    if max_bytes is None:
        max_bytes = max_packed_bytes()
    row_bytes = ((num_nodes + 63) >> 6) << 3
    return max(1, int(max_bytes) // max(1, row_bytes))


class RowBlockBuilder:
    """Builds packed row-range blocks of one graph from its sorted codes.

    The constructor decodes the codes once and prepares a column-sorted
    permutation (one ``O(E log E)`` argsort); every :meth:`build` then costs
    ``O(E_block)``.  Total extra memory is four E-length int64 arrays —
    proportional to the *sparse* size of the graph, never to ``n^2``.
    """

    __slots__ = ("num_nodes", "num_words", "_rows", "_cols", "_cols_sorted", "_rows_by_col")

    def __init__(self, num_nodes: int, codes: np.ndarray):
        self.num_nodes = int(num_nodes)
        self.num_words = (self.num_nodes + 63) >> 6
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size:
            rows, cols = decode_pairs(codes, self.num_nodes)
        else:
            rows = cols = np.empty(0, dtype=np.int64)
        # Sorted codes decode to lex-sorted (row, col) pairs, so ``rows`` is
        # sorted: the row half of any block is two searchsorted probes.
        self._rows = rows
        self._cols = cols
        order = np.argsort(cols, kind="stable")
        self._cols_sorted = cols[order]
        self._rows_by_col = rows[order]

    @classmethod
    def from_graph(cls, graph) -> "RowBlockBuilder":
        return cls(graph.num_nodes, graph.edge_codes)

    def build(self, start: int, stop: int) -> np.ndarray:
        """Packed rows ``[start, stop)`` — bit-identical to the same slice of
        ``BitMatrix.from_graph(graph).rows``."""
        if not 0 <= start <= stop <= self.num_nodes:
            raise ValueError(
                f"row range [{start}, {stop}) out of [0, {self.num_nodes}]"
            )
        height = stop - start
        words = self.num_words
        if height == 0 or words == 0:
            return np.zeros((height, words), dtype=np.uint64)
        # Bits with the *lower* endpoint in range: contiguous slice of the
        # row-sorted arrays.  Bits with the *upper* endpoint in range: a
        # contiguous slice of the column-sorted permutation.
        lo = np.searchsorted(self._rows, start, side="left")
        hi = np.searchsorted(self._rows, stop, side="left")
        clo = np.searchsorted(self._cols_sorted, start, side="left")
        chi = np.searchsorted(self._cols_sorted, stop, side="left")
        local = np.concatenate([self._rows[lo:hi], self._cols_sorted[clo:chi]]) - start
        bits = np.concatenate([self._cols[lo:hi], self._rows_by_col[clo:chi]])
        if local.size == 0:
            return np.zeros((height, words), dtype=np.uint64)
        # Every (row, bit) position is unique (simple graph; the two halves
        # land on different positions), so the split-bincount OR is exact.
        flat = local * words + (bits >> 6)
        block = accumulate_bits(flat, bits & 63, height * words)
        return block.reshape(height, words)


def iter_packed_row_blocks(
    graph,
    block_rows: int | None = None,
    *,
    max_bytes: int | None = None,
) -> Iterator[Tuple[int, int, np.ndarray]]:
    """Yield ``(start, stop, rows)`` packed row blocks of ``graph``.

    ``rows`` is a ``(stop - start, ceil(n/64))`` uint64 array equal to the
    same slice of the in-memory ``BitMatrix`` — for every ``block_rows``,
    including 1 and ``> n`` — so downstream consumers are chunk-size
    invariant by construction.  The default block height honours
    ``REPRO_DENSE_MAX_BYTES`` (``max_bytes`` overrides the cap).
    """
    n = graph.num_nodes
    if block_rows is None:
        block_rows = rows_per_block(n, max_bytes)
    block_rows = int(block_rows)
    if block_rows < 1:
        raise ValueError(f"block_rows must be >= 1, got {block_rows}")
    builder = RowBlockBuilder.from_graph(graph)
    for start in range(0, n, block_rows):
        stop = min(n, start + block_rows)
        yield start, stop, builder.build(start, stop)


@dataclass(frozen=True)
class ChunkedRowsHandle:
    """Picklable reference to a graph's packed rows, chunked across segments.

    ``boundaries`` has one entry per chunk plus a trailing ``num_nodes``:
    chunk ``i`` holds packed rows ``[boundaries[i], boundaries[i + 1])`` in
    the shared-memory segment ``segment_names[i]``.  Workers attach exactly
    the chunks whose row ranges they process — never the whole matrix.
    """

    num_nodes: int
    boundaries: Tuple[int, ...]
    segment_names: Tuple[str, ...]

    @property
    def num_chunks(self) -> int:
        return len(self.segment_names)

    def chunk_for_row(self, row: int) -> int:
        """Index of the chunk holding packed row ``row``."""
        if not 0 <= row < self.num_nodes:
            raise ValueError(f"row {row} out of [0, {self.num_nodes})")
        return int(np.searchsorted(self.boundaries, row, side="right")) - 1


def share_packed_row_blocks(
    graph,
    *,
    block_rows: int | None = None,
    max_bytes: int | None = None,
) -> Tuple[ChunkedRowsHandle, List[object]]:
    """Export a graph's packed rows as one shared-memory segment per block.

    Blocks are built with :func:`iter_packed_row_blocks` (so each segment
    honours ``REPRO_DENSE_MAX_BYTES`` by default and the full ``n^2/8``
    matrix is never resident: one block is live at a time while exporting).
    Returns the picklable handle plus the created ``SharedMemory`` segments,
    whose lifecycle the caller owns — :class:`repro.engine.graph_store
    .GraphStore` adopts them and unlinks on close.
    """
    from multiprocessing import shared_memory

    n = graph.num_nodes
    boundaries: List[int] = [0]
    names: List[str] = []
    segments: List[object] = []
    try:
        for start, stop, rows in iter_packed_row_blocks(
            graph, block_rows, max_bytes=max_bytes
        ):
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, rows.nbytes)
            )
            if rows.size:
                np.ndarray(rows.shape, dtype=np.uint64, buffer=segment.buf)[:] = rows
            boundaries.append(stop)
            names.append(segment.name)
            segments.append(segment)
    except BaseException:
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except OSError:  # pragma: no cover - cleanup best effort
                pass
        raise
    if not names:  # n == 0: a handle with no chunks
        boundaries = [0, 0]
        empty = shared_memory.SharedMemory(create=True, size=1)
        names.append(empty.name)
        segments.append(empty)
    return (
        ChunkedRowsHandle(n, tuple(boundaries), tuple(names)),
        segments,
    )


def attach_packed_row_block(
    handle: ChunkedRowsHandle, chunk: int
) -> Tuple[int, int, np.ndarray, object]:
    """Map one exported chunk read-only; returns ``(start, stop, rows, shm)``.

    Zero-copy: ``rows`` is a ``(stop - start, ceil(n/64))`` uint64 view of
    the shared segment.  The caller must keep ``shm`` alive as long as the
    view and close (never unlink) it afterwards — the exporting store owns
    the unlink.
    """
    from repro.graph.adjacency import attach_shared_memory

    if not 0 <= chunk < handle.num_chunks:
        raise ValueError(f"chunk {chunk} out of [0, {handle.num_chunks})")
    start = handle.boundaries[chunk]
    stop = handle.boundaries[chunk + 1]
    words = (handle.num_nodes + 63) >> 6
    segment = attach_shared_memory(handle.segment_names[chunk])
    rows = np.frombuffer(
        segment.buf, dtype=np.uint64, count=(stop - start) * words
    ).reshape(stop - start, words)
    rows.flags.writeable = False
    return start, stop, rows, segment


def streaming_degrees(graph, chunk_edges: int | None = None) -> np.ndarray:
    """Exact degrees with O(``chunk_edges``) transients.

    Equals ``graph.degrees()`` bit for bit (the same bincounts over the same
    decoded endpoints, accumulated chunk by chunk in exact int64).
    """
    n = graph.num_nodes
    if chunk_edges is None:
        chunk_edges = DEFAULT_CHUNK_EDGES
    if chunk_edges < 1:
        raise ValueError(f"chunk_edges must be >= 1, got {chunk_edges}")
    counts = np.zeros(n, dtype=np.int64)
    codes = graph.edge_codes
    for start in range(0, codes.size, chunk_edges):
        rows, cols = decode_pairs(codes[start : start + chunk_edges], n)
        counts += np.bincount(rows, minlength=n)
        counts += np.bincount(cols, minlength=n)
    return counts


def streaming_intra_community_edges(
    graph,
    labels: np.ndarray,
    num_communities: int,
    chunk_edges: int | None = None,
) -> np.ndarray:
    """Exact per-community intra-edge counts with O(``chunk_edges``) transients.

    Same integers as both branches of
    :func:`repro.protocols.estimators.observed_intra_community_edges` —
    a same-label bincount over the edges, accumulated per chunk.
    """
    n = graph.num_nodes
    labels = np.asarray(labels, dtype=np.int64)
    if chunk_edges is None:
        chunk_edges = DEFAULT_CHUNK_EDGES
    if chunk_edges < 1:
        raise ValueError(f"chunk_edges must be >= 1, got {chunk_edges}")
    counts = np.zeros(num_communities, dtype=np.int64)
    codes = graph.edge_codes
    for start in range(0, codes.size, chunk_edges):
        rows, cols = decode_pairs(codes[start : start + chunk_edges], n)
        row_labels = labels[rows]
        same = row_labels == labels[cols]
        counts += np.bincount(row_labels[same], minlength=num_communities)
    return counts


def streaming_triangles_per_node(
    graph,
    block_rows: int | None = None,
    *,
    max_bytes: int | None = None,
) -> np.ndarray:
    """Exact per-node triangle counts over packed row blocks.

    The edge-gather formulation of
    :meth:`~repro.graph.bitmatrix.BitMatrix.triangles_per_node` — every edge
    ``{u, v}`` contributes ``popcount(row_u & row_v)`` to both endpoints,
    halved at the end — with ``row_u`` and ``row_v`` served from two live
    row blocks instead of a resident matrix.  The default block height is
    *half* of :func:`rows_per_block` so the pair of live blocks together
    honours ``REPRO_DENSE_MAX_BYTES``.  Identical integers to the in-memory
    backends: the same popcounts accumulate onto the same endpoints.

    Cost: ``O((n / block_rows)^2)`` block builds of ``O(E_block)`` each plus
    the same AND+popcount volume as the dense sweep — the price of never
    holding the matrix.
    """
    n = graph.num_nodes
    counts = np.zeros(n, dtype=np.int64)
    if n == 0 or graph.num_edges == 0:
        return counts
    if block_rows is None:
        block_rows = max(1, rows_per_block(n, max_bytes) // 2)
    block_rows = int(block_rows)
    if block_rows < 1:
        raise ValueError(f"block_rows must be >= 1, got {block_rows}")
    builder = RowBlockBuilder.from_graph(graph)
    edge_rows = builder._rows
    edge_cols = builder._cols
    words = builder.num_words
    chunk = max(1, _CHUNK_WORDS // max(1, words))
    for a_start in range(0, n, block_rows):
        a_stop = min(n, a_start + block_rows)
        # Edges with the lower endpoint in block A: one contiguous slice.
        lo = np.searchsorted(edge_rows, a_start, side="left")
        hi = np.searchsorted(edge_rows, a_stop, side="left")
        if lo == hi:
            continue
        block_a = builder.build(a_start, a_stop)
        slice_u = edge_rows[lo:hi]
        slice_v = edge_cols[lo:hi]
        # The upper endpoint v > u can only live in block A or later ones.
        for b_start in range(a_start, n, block_rows):
            b_stop = min(n, b_start + block_rows)
            selected = np.flatnonzero((slice_v >= b_start) & (slice_v < b_stop))
            if selected.size == 0:
                continue
            block_b = (
                block_a
                if b_start == a_start
                else builder.build(b_start, b_stop)
            )
            for start in range(0, selected.size, chunk):
                pick = selected[start : start + chunk]
                us = slice_u[pick]
                vs = slice_v[pick]
                pops = _row_popcounts(
                    block_a[us - a_start] & block_b[vs - b_start]
                ).astype(np.float64)
                counts += np.bincount(us, weights=pops, minlength=n).astype(np.int64)
                counts += np.bincount(vs, weights=pops, minlength=n).astype(np.int64)
    return counts // 2
