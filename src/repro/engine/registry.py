"""String-keyed registries of attacks, protocols and defenses.

Task specs (:class:`repro.engine.tasks.TrialTask`) must be serialisable and
hashable, so they reference scenario components *by name* rather than by
object.  The registries here map those names to factories and back:

>>> from repro.engine.registry import ATTACKS
>>> ATTACKS.create("degree/mga").name
'MGA'
>>> ATTACKS.resolve(type(ATTACKS.create("degree/mga")))
'degree/mga'

Every attack and protocol exported from :mod:`repro.core` /
:mod:`repro.protocols` (and every graph defense from :mod:`repro.defenses`)
is registered at import time; user code may register additional components
under new names to make them addressable from configs and the CLI.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple, TypeVar

T = TypeVar("T")


class Registry:
    """A name -> factory mapping with reverse lookup.

    Parameters
    ----------
    kind:
        Human-readable component kind ("attack", ...) used in error messages.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._factories: Dict[str, Callable[..., object]] = {}

    def register(
        self, name: str, factory: Optional[Callable[..., T]] = None
    ) -> Callable[..., T]:
        """Register ``factory`` under ``name``; usable as a decorator.

        Re-registering a name with a *different* factory raises — silent
        replacement would corrupt cache keys that embed the name.
        """

        def _do_register(target: Callable[..., T]) -> Callable[..., T]:
            existing = self._factories.get(name)
            if existing is not None and existing is not target:
                raise ValueError(f"{self.kind} {name!r} is already registered")
            self._factories[name] = target
            return target

        if factory is None:
            return _do_register
        return _do_register(factory)

    def get(self, name: str) -> Callable[..., object]:
        """The factory registered under ``name``; KeyError lists known names."""
        try:
            return self._factories[name]
        except KeyError:
            known = ", ".join(sorted(self._factories)) or "<none>"
            raise KeyError(f"unknown {self.kind} {name!r}; known: {known}") from None

    def create(self, name: str, **kwargs) -> object:
        """Instantiate the component registered under ``name``."""
        return self.get(name)(**kwargs)

    def resolve(self, factory: Callable[..., object]) -> Optional[str]:
        """Reverse lookup: the name ``factory`` is registered under, or None."""
        for name, registered in self._factories.items():
            if registered is factory:
                return name
        return None

    def names(self) -> Tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._factories))

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)


#: Poisoning attacks, keyed "<metric family>/<paper name>".
ATTACKS = Registry("attack")

#: Graph-LDP collection protocols; factories take ``epsilon`` as first arg.
PROTOCOLS = Registry("protocol")

#: Countermeasures (the paper's Detect1/Detect2 and the naive baselines).
DEFENSES = Registry("defense")


def _register_defaults() -> None:
    """Register everything the library ships; deferred to avoid import cycles."""
    from repro.core.clustering_attacks import ClusteringMGA, ClusteringRNA, ClusteringRVA
    from repro.core.degree_attacks import DegreeMGA, DegreeRNA, DegreeRVA
    from repro.core.untargeted_attacks import (
        UntargetedConcentratedAttack,
        UntargetedUniformAttack,
        UntargetedWithdrawalAttack,
    )
    from repro.defenses.degree_consistency import DegreeConsistencyDefense
    from repro.defenses.frequent_itemset import FrequentItemsetDefense
    from repro.defenses.hybrid import HybridDefense
    from repro.defenses.naive import NaiveDegreeTailsDefense, NaiveTopDegreeDefense
    from repro.protocols.ldpgen import LDPGenProtocol
    from repro.protocols.lfgdpr import LFGDPRProtocol

    ATTACKS.register("degree/rva", DegreeRVA)
    ATTACKS.register("degree/rna", DegreeRNA)
    ATTACKS.register("degree/mga", DegreeMGA)
    ATTACKS.register("clustering/rva", ClusteringRVA)
    ATTACKS.register("clustering/rna", ClusteringRNA)
    ATTACKS.register("clustering/mga", ClusteringMGA)
    ATTACKS.register("untargeted/uniform", UntargetedUniformAttack)
    ATTACKS.register("untargeted/concentrated", UntargetedConcentratedAttack)
    ATTACKS.register("untargeted/withdrawal", UntargetedWithdrawalAttack)

    PROTOCOLS.register("lfgdpr", LFGDPRProtocol)
    PROTOCOLS.register("ldpgen", LDPGenProtocol)

    DEFENSES.register("detect1", FrequentItemsetDefense)
    DEFENSES.register("detect2", DegreeConsistencyDefense)
    DEFENSES.register("naive1", NaiveTopDegreeDefense)
    DEFENSES.register("naive2", NaiveDegreeTailsDefense)
    DEFENSES.register("hybrid", HybridDefense)


_register_defaults()
