"""Quickstart: poison an LDP degree-centrality collection in ~30 lines.

Loads the Facebook surrogate, runs LF-GDPR honestly, then injects 5% fake
users running the Maximal Gain Attack against 5% target nodes, and prints
how far the server's estimates for the targets move.

Run:  python examples/quickstart.py
"""

from repro import DegreeMGA, LFGDPRProtocol, ThreatModel, evaluate_attack, load_dataset


def main():
    # A laptop-sized slice of the Facebook surrogate (pass scale=1.0 for the
    # full 4,039-node graph).
    graph = load_dataset("facebook", scale=0.25)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # The protocol under attack: LF-GDPR with the paper's default budget.
    protocol = LFGDPRProtocol(epsilon=4.0)

    # Table III threat model: the attacker controls beta=5% of the users and
    # targets gamma=5% of the genuine nodes.
    threat = ThreatModel.sample(graph, beta=0.05, gamma=0.05, rng=0)
    print(f"threat: {threat.num_fake} fake users, {threat.num_targets} targets")

    # One paired before/after evaluation with common random numbers.
    outcome = evaluate_attack(
        graph, protocol, DegreeMGA(), threat, metric="degree_centrality", rng=0
    )

    print(f"\nattack: {outcome.attack_name} on {outcome.metric}")
    print(f"overall gain (Eq. 5):   {outcome.total_gain:.4f}")
    print(f"mean per-target shift:  {outcome.mean_gain:.4f}")
    worst = outcome.per_target_gain.argmax()
    print(
        f"hardest-hit target {outcome.targets[worst]}: "
        f"{outcome.before[worst]:.4f} -> {outcome.after[worst]:.4f}"
    )


if __name__ == "__main__":
    main()
