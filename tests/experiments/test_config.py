"""Tests for the experiment configuration."""

import pytest

from repro.experiments.config import (
    BETAS,
    DATASET_NAMES,
    DEFAULT_CONFIG,
    DETECT1_THRESHOLDS_CLUSTERING,
    DETECT1_THRESHOLDS_DEGREE,
    DETECT2_BETAS,
    EPSILONS,
    GAMMAS,
    ExperimentConfig,
)


class TestDefaults:
    def test_table3_values(self):
        assert DEFAULT_CONFIG.beta == 0.05
        assert DEFAULT_CONFIG.gamma == 0.05
        assert DEFAULT_CONFIG.epsilon == 4.0

    def test_dataset_order(self):
        assert DATASET_NAMES == ("facebook", "enron", "astroph", "gplus")

    def test_sweep_grids(self):
        assert EPSILONS == (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0)
        assert BETAS == (0.001, 0.005, 0.01, 0.05, 0.1)
        assert GAMMAS == BETAS
        assert DETECT1_THRESHOLDS_DEGREE == (50, 100, 150, 200, 250, 300)
        assert DETECT1_THRESHOLDS_CLUSTERING == (50, 75, 100, 125, 150)
        assert DETECT2_BETAS[-1] == 0.15


class TestConfig:
    def test_with_overrides(self):
        config = DEFAULT_CONFIG.with_overrides(epsilon=2.0, trials=1)
        assert config.epsilon == 2.0
        assert config.trials == 1
        assert config.beta == DEFAULT_CONFIG.beta

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_CONFIG.epsilon = 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(beta=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(epsilon=-1.0)
        with pytest.raises(ValueError):
            ExperimentConfig(trials=0)

    @pytest.mark.parametrize("field", ["trials", "jobs"])
    def test_rejects_non_integer_counts(self, field):
        """trials/jobs must be bona-fide integers, not floats or bools."""
        with pytest.raises(TypeError, match="integer"):
            ExperimentConfig(**{field: 2.0})
        with pytest.raises(TypeError, match="integer"):
            ExperimentConfig(**{field: "3"})
        with pytest.raises(TypeError, match="integer"):
            ExperimentConfig(**{field: True})
        with pytest.raises(ValueError, match="positive integer"):
            ExperimentConfig(**{field: -1})

    def test_numpy_integer_counts_accepted(self):
        import numpy as np

        config = ExperimentConfig(trials=np.int64(2), jobs=np.int32(4))
        assert config.trials == 2 and config.jobs == 4

    @pytest.mark.parametrize("scale", [0.0, -0.1, 1.5, 2])
    def test_rejects_scale_outside_unit_interval(self, scale):
        with pytest.raises(ValueError, match=r"scale must lie in \(0, 1\]"):
            ExperimentConfig(scale=scale)

    def test_scale_bounds(self):
        assert ExperimentConfig(scale=1.0).scale == 1.0
        assert ExperimentConfig(scale=0.001).scale == 0.001
        assert ExperimentConfig(scale=None).scale is None
