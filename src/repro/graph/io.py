"""Edge-list I/O in the whitespace-separated SNAP format.

If a user of this library has the real SNAP datasets on disk, they can load
them with :func:`read_edge_list` and run every experiment on the genuine
graphs instead of the surrogates.
"""

from __future__ import annotations

import os
from typing import Union

from repro.graph.adjacency import Graph

PathLike = Union[str, os.PathLike]


def read_edge_list(
    path: PathLike,
    num_nodes: int | None = None,
    *,
    allow_self_loops: bool = False,
    allow_duplicates: bool = False,
) -> Graph:
    """Read and validate a whitespace-separated edge list (``u v`` per line).

    Lines starting with ``#`` are comments.  Node ids may be arbitrary
    non-negative integers; they are compacted to ``0..n-1`` preserving order
    of first appearance unless ``num_nodes`` is given, in which case ids are
    taken literally and must be < ``num_nodes``.

    Real-dataset files are validated strictly — every rejection names the
    offending line: malformed or non-integer tokens, negative ids, ids
    ``>= num_nodes``, self-loops and duplicate (undirected) edges all raise
    ``ValueError``.  Dataset dumps that legitimately carry self-loops or
    both edge directions can opt out per class of damage:
    ``allow_self_loops=True`` skips loops, ``allow_duplicates=True``
    collapses repeats — both silently, matching the old lenient behavior.
    """
    raw_edges: list[tuple[int, int]] = []
    seen: dict[tuple[int, int], int] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{line_number}: expected 'u v', got {stripped!r}")
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError:
                raise ValueError(
                    f"{path}:{line_number}: non-integer node id in {stripped!r}"
                ) from None
            if u < 0 or v < 0:
                raise ValueError(
                    f"{path}:{line_number}: negative node id {min(u, v)}"
                )
            if num_nodes is not None and max(u, v) >= num_nodes:
                raise ValueError(
                    f"{path}:{line_number}: node id {max(u, v)} out of range "
                    f"for num_nodes={num_nodes}"
                )
            if u == v:
                if allow_self_loops:
                    continue
                raise ValueError(
                    f"{path}:{line_number}: self-loop {u} {v} "
                    "(pass allow_self_loops=True to skip loops)"
                )
            key = (u, v) if u < v else (v, u)
            first = seen.setdefault(key, line_number)
            if first != line_number:
                if allow_duplicates:
                    continue
                raise ValueError(
                    f"{path}:{line_number}: duplicate edge {u} {v} "
                    f"(first at line {first}; pass allow_duplicates=True "
                    "to collapse repeats)"
                )
            raw_edges.append((u, v))

    if num_nodes is not None:
        return Graph(num_nodes, raw_edges)

    # Compact labels in order of first appearance.
    mapping: dict[int, int] = {}
    for u, v in raw_edges:
        if u not in mapping:
            mapping[u] = len(mapping)
        if v not in mapping:
            mapping[v] = len(mapping)
    edges = [(mapping[u], mapping[v]) for u, v in raw_edges]
    return Graph(len(mapping), edges)


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write the graph as a whitespace-separated edge list with a header."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")
